module Schema = Raqo_catalog.Schema
module Random_schema = Raqo_catalog.Random_schema
module Interned = Raqo_catalog.Interned
module Join_impl = Raqo_plan.Join_impl
module Brute_force = Raqo_resource.Brute_force
module Counters = Raqo_resource.Counters
module Conditions = Raqo_cluster.Conditions
module Resources = Raqo_cluster.Resources
module Rng = Raqo_util.Rng
module Op_cost = Raqo_cost.Op_cost
module Coster = Raqo_planner.Coster
module Selinger = Raqo_planner.Selinger
module Dpsub = Raqo_planner.Dpsub
module Exhaustive = Raqo_planner.Exhaustive
module Randomized = Raqo_planner.Randomized
module Heuristics = Raqo_planner.Heuristics
module Resource_planner = Raqo_resource.Resource_planner
module Plan_cache = Raqo_resource.Plan_cache
module Pool = Raqo_par.Pool
module Engine = Raqo_execsim.Engine
module Simulate = Raqo_execsim.Simulate
module Estimation_error = Raqo_execsim.Estimation_error
module Adaptive_exec = Raqo_adaptive.Adaptive_exec
module Rewrite = Raqo_rewrite.Rewrite
module Cost_based = Raqo.Cost_based
module D = Diagnostic

type instance = {
  seed : int;
  tables : int;
  joins : int;
  schema : Schema.t;
  relations : string list;
}

let default_tables = 6
let default_joins = 4

let instance ?(tables = default_tables) ?(joins = default_joins) seed =
  let rng = Rng.create seed in
  let schema = Random_schema.generate rng ~tables in
  let relations = Random_schema.query rng schema ~joins:(min joins (tables - 1)) in
  { seed; tables; joins; schema; relations }

let with_relations t relations = { t with relations }

let pp_instance fmt t =
  Format.fprintf fmt "seed=%d tables=%d joins=%d query=[%s]" t.seed t.tables t.joins
    (String.concat " " t.relations)

type fault = arm:string -> Coster.t -> Coster.t

let no_fault ~arm:_ coster = coster

(* A deliberately compact condition grid (8 x 6 = 48 configurations) keeps
   the brute-force resource arms cheap enough to fuzz by the hundreds while
   still giving hill climbing room to get stuck somewhere interesting. *)
let conditions =
  Conditions.make ~min_containers:1 ~max_containers:8 ~container_step:1 ~min_gb:1.0
    ~max_gb:6.0 ~gb_step:1.0 ()

(* In-grid fixed configuration for the two-step ("QO") baseline arms. *)
let fixed_resources = Resources.make ~containers:4 ~container_gb:3.0

(* Floored model: non-negative join costs make bound-pruning sound and give
   the cost-ordering relations below their meaning. *)
let model = Op_cost.with_floor 0.01 Op_cost.paper

(* Relative tolerance for cross-arm cost comparisons: the same join set can
   be summed in different orders by different planners. *)
let tol a b = 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
let approx_eq a b = Float.abs (a -. b) <= tol a b
let leq a b = a <= b +. tol a b

(* Arms actually run (size-gated arms like dpsub/exhaustive are skipped on
   big instances), surfaced by the `raqo fuzz` metrics summary. *)
let m_arms = Raqo_obs.Metrics.counter "raqo_fuzz_oracle_arms_total"

let check ?(jobs = [ 2; 4 ]) ?(fault = no_fault) t =
  let diags = ref [] in
  let add ds = diags := !diags @ ds in
  let schema = t.schema and rels = t.relations in
  let n = List.length rels in
  let fixed arm = fault ~arm (Coster.fixed model schema fixed_resources) in
  (* Every arm's plan must satisfy the structural invariants before any
     cross-arm relation is worth stating. *)
  let validate arm = function
    | None ->
        if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_arms;
        add [ D.v ~invariant:"oracle/no-plan" "%s found no feasible plan" arm ];
        None
    | Some ((tree, cost) as plan) ->
        if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_arms;
        add
          (List.map (D.tag arm)
             (Invariant.check_joint ~model ~conditions ~schema ~expected:rels (tree, cost)));
        Some plan
  in
  let cost = Option.map snd in
  (* A relation between two arms only fires when both produced a plan; a
     one-sided [None] is already reported by [validate]. *)
  let relate invariant describe ok a b =
    match (a, b) with
    | Some a, Some b ->
        if not (ok a b) then add [ D.v ~invariant "%s (%.6f vs %.6f)" describe a b ]
    | Some _, None | None, Some _ | None, None -> ()
  in

  (* ------------------------------------------- fixed-resource planner arms *)
  let sel_coster, sel_invocations = Coster.counting (fixed "selinger") in
  let sel = validate "selinger" (Selinger.optimize sel_coster schema rels) in
  let sel_pruned =
    validate "selinger-pruned" (fst (Selinger.optimize_pruned (fixed "selinger-pruned") schema rels))
  in
  let memo_inner, memo_invocations = Coster.counting (fixed "selinger-memo") in
  let sel_memo = validate "selinger+memo" (Selinger.optimize (Coster.memoize memo_inner) schema rels) in
  let dpsub = if n <= 14 then validate "dpsub" (Dpsub.optimize (fixed "dpsub") schema rels) else None in
  let exhaustive =
    if n <= 7 then validate "exhaustive" (Exhaustive.optimize (fixed "exhaustive") schema rels)
    else None
  in
  let rand_seed = (t.seed * 1_000_003) + 7 in
  let rand_seq =
    validate "randomized"
      (Randomized.optimize (Rng.create rand_seed) (fixed "randomized") schema rels)
  in
  let greedy =
    match Heuristics.greedy_left_deep schema rels with
    | shape -> Option.map snd (Coster.cost_tree (fixed "greedy") shape)
    | exception Invalid_argument _ -> None
  in

  (* Exact planners agree; every planner lower-bounds the heuristics. *)
  relate "oracle/dpsub-vs-exhaustive" "bushy DP must equal the exhaustive oracle" approx_eq
    (cost dpsub) (cost exhaustive);
  relate "oracle/exhaustive-above-selinger" "exhaustive (bushy) must be <= Selinger (left-deep)"
    leq (cost exhaustive) (cost sel);
  relate "oracle/dpsub-above-selinger" "bushy DP must be <= Selinger (left-deep)" leq
    (cost dpsub) (cost sel);
  relate "oracle/dpsub-above-randomized" "exact bushy DP must be <= randomized search" leq
    (cost dpsub) (cost rand_seq);
  relate "oracle/selinger-above-greedy" "Selinger DP must be <= greedy left-deep" leq (cost sel)
    greedy;
  relate "oracle/pruned-vs-plain" "bound-pruned Selinger must keep the optimum" approx_eq
    (cost sel_pruned) (cost sel);
  relate "oracle/memo-vs-plain" "memoized coster must not change the Selinger optimum" approx_eq
    (cost sel_memo) (cost sel);
  if n <= 3 then
    (* With <= 3 relations every cartesian-free bushy tree is left-deep up to
       mirroring, which symmetric costers cannot distinguish. *)
    relate "oracle/selinger-vs-dpsub-small" "left-deep and bushy DP coincide for n <= 3"
      approx_eq (cost sel) (cost dpsub);
  if sel_memo <> None && memo_invocations () > sel_invocations () then
    add
      [ D.v ~invariant:"oracle/memo-extra-lookups"
          "memoized coster issued %d underlying lookups, plain Selinger %d" (memo_invocations ())
          (sel_invocations ()) ];

  (* Parallel randomized restarts must be bit-identical to sequential for a
     fixed seed (pre-split restart RNGs, order-preserving pool). *)
  List.iter
    (fun j ->
      if j > 1 then begin
        let par =
          Pool.with_pool ~jobs:j (fun pool ->
              Randomized.optimize_par pool (Rng.create rand_seed)
                ~coster:(fun () -> fixed "randomized-par")
                schema rels)
        in
        relate "oracle/randomized-par-vs-seq"
          (Printf.sprintf "parallel randomized (%d jobs) must equal sequential, same seed" j)
          (fun a b -> a = b)
          (cost par) (cost rand_seq)
      end)
    jobs;

  (* ------------------------------------------ resource-planning mode arms *)
  let raqo_arm arm ~strategy ~cache ?pool () =
    let rp = Resource_planner.create ~strategy ~cache ?pool conditions in
    (rp, fault ~arm (Coster.raqo model schema rp))
  in
  let rp_bf, bf_coster = raqo_arm "raqo-bf" ~strategy:Resource_planner.Brute_force ~cache:true () in
  let raqo_bf = validate "raqo-bf" (Selinger.optimize bf_coster schema rels) in
  let _, bf_nocache_coster =
    raqo_arm "raqo-bf-nocache" ~strategy:Resource_planner.Brute_force ~cache:false ()
  in
  let raqo_bf_nocache =
    validate "raqo-bf-nocache" (Selinger.optimize bf_nocache_coster schema rels)
  in
  let _, hc_coster = raqo_arm "raqo-hc" ~strategy:Resource_planner.Hill_climb ~cache:true () in
  let raqo_hc = validate "raqo-hc" (Selinger.optimize hc_coster schema rels) in

  relate "oracle/raqo-cache-vs-nocache"
    "exact-lookup cache must not change the brute-force joint optimum" approx_eq (cost raqo_bf)
    (cost raqo_bf_nocache);
  relate "oracle/raqo-bf-above-hc"
    "global grid search must be <= hill climbing per join, hence overall" leq (cost raqo_bf)
    (cost raqo_hc);
  relate "oracle/raqo-above-fixed"
    "joint optimization must be <= the two-step baseline at an in-grid config" leq
    (cost raqo_bf) (cost sel);

  (* Parallel brute-force grid partitioning must agree with the sequential
     scan (first-wins ties, merged in enumeration order). *)
  List.iter
    (fun j ->
      if j > 1 then
        Pool.with_pool ~jobs:j (fun pool ->
            let _, coster =
              raqo_arm "raqo-bf-par" ~strategy:Resource_planner.Brute_force ~cache:true ~pool ()
            in
            let par = validate "raqo-bf-par" (Selinger.optimize coster schema rels) in
            relate "oracle/raqo-par-vs-seq"
              (Printf.sprintf "partitioned grid search (%d jobs) must equal sequential" j)
              (fun a b -> a = b)
              (cost par) (cost raqo_bf)))
    jobs;

  (* ------------------------------------------------ mask-core bit-identity *)
  (* Every mask-based planner must return bit-identical (plan, cost, coster
     invocation count) results to the historical string-list implementation
     when both drive the same underlying coster — the fault seam wraps that
     shared coster, so these relations test the interning machinery itself
     rather than the coster. *)
  (match Interned.make schema rels with
  | exception Invalid_argument _ -> ()
  | ctx ->
      let base = fault ~arm:"mask-core" (Coster.fixed model schema fixed_resources) in
      let pair () =
        let m, m_count = Coster.counting_masked (Coster.of_strings ctx base) in
        let s, s_count = Coster.counting base in
        (m, m_count, s, s_count)
      in
      let identical invariant describe masked reference =
        if masked <> reference then
          add [ D.v ~invariant "mask-based %s diverged from the string reference" describe ]
      in
      let m, mc, s, sc = pair () in
      identical "oracle/mask-selinger" "Selinger"
        (Selinger.optimize_masked m ctx, mc ())
        (Selinger.optimize_reference s schema rels, sc ());
      let m, mc, s, sc = pair () in
      identical "oracle/mask-selinger-pruned" "bound-pruned Selinger"
        (Selinger.optimize_pruned_masked m ctx, mc ())
        (Selinger.optimize_pruned_reference s schema rels, sc ());
      let m, mc, s, sc = pair () in
      identical "oracle/mask-selinger-memo" "memoized Selinger"
        (Selinger.optimize_masked (Coster.memoize_masked ctx m) ctx, mc ())
        (Selinger.optimize_reference (Coster.memoize s) schema rels, sc ());
      if n <= 14 then begin
        let m, mc, s, sc = pair () in
        identical "oracle/mask-dpsub" "bushy DP"
          (Dpsub.optimize_masked m ctx, mc ())
          (Dpsub.optimize_reference s schema rels, sc ())
      end;
      if n <= 7 then begin
        let m, mc, s, sc = pair () in
        identical "oracle/mask-exhaustive" "exhaustive enumeration"
          (Exhaustive.optimize_masked m ctx, mc ())
          (Exhaustive.optimize s schema rels, sc ())
      end;
      let m, mc, s, sc = pair () in
      identical "oracle/mask-randomized" "randomized search (same seed)"
        (Randomized.optimize_masked (Rng.create rand_seed) m ctx, mc ())
        (Randomized.optimize (Rng.create rand_seed) s schema rels, sc ());

      (* ------------------------------------------ parallel shared-memo DP *)
      (* The level-synchronous parallel DPsub must be bit-identical — plan
         shape, cost, resource assignment, tie-breaks — to the sequential
         mask sweep at every pool size, with both the fixed coster (behind
         the fault seam) and the resource-planning coster with per-worker
         forked planners. Structural equality [=] is deliberate: costs must
         match bitwise, not within tolerance. *)
      let memo_jobs = List.sort_uniq compare (1 :: List.filter (fun j -> j >= 1) jobs) in
      if n <= 14 then begin
        let fixed_base = fault ~arm:"memo-dpsub-par" (Coster.fixed model schema fixed_resources) in
        let seq = Dpsub.optimize_masked (Coster.of_strings ctx fixed_base) ctx in
        List.iter
          (fun j ->
            Pool.with_pool ~jobs:j (fun pool ->
                let par =
                  Dpsub.optimize_par_masked
                    ~coster:(fun () -> Coster.of_strings ctx fixed_base)
                    pool ctx
                in
                if par <> seq then
                  add
                    [ D.v ~invariant:"oracle/memo-dpsub-par-vs-seq"
                        "parallel shared-memo DP (%d jobs) diverged from sequential DPsub" j ];
                relate "oracle/memo-dpsub-par-vs-exhaustive"
                  (Printf.sprintf
                     "parallel shared-memo DP (%d jobs) must equal the exhaustive oracle" j)
                  approx_eq (cost par) (cost exhaustive)))
          memo_jobs
      end;
      if n <= 10 then begin
        let rp = Resource_planner.create conditions in
        let seq = Dpsub.optimize_masked (Coster.raqo_masked model ctx rp) ctx in
        List.iter
          (fun j ->
            Pool.with_pool ~jobs:j (fun pool ->
                let par =
                  Dpsub.optimize_par_masked
                    ~coster:(fun () ->
                      Coster.raqo_masked model ctx (Resource_planner.fork rp))
                    pool ctx
                in
                if par <> seq then
                  add
                    [ D.v ~invariant:"oracle/memo-dpsub-par-raqo-vs-seq"
                        "parallel shared-memo joint planning (%d jobs) diverged from the \
                         sequential resource-planning sweep" j ]))
          memo_jobs
      end);

  (* ------------------------------------------------ pruned resource search *)
  (* Branch-and-bound over the resource grid must return exactly what the
     exhaustive scan returns — configuration, cost, and tie-breaks — for
     every join implementation across a spread of build-side sizes (feasible
     everywhere, partially feasible, and all-infeasible for BHJ). *)
  List.iter
    (fun impl ->
      List.iter
        (fun small_gb ->
          match Op_cost.region_lower_bound model impl ~small_gb with
          | None -> ()
          | Some bound ->
              let cost r = Op_cost.predict_exn model impl ~small_gb ~resources:r in
              let exhaustive_counters = Counters.create () in
              let pruned_counters = Counters.create () in
              let exact = Brute_force.search ~counters:exhaustive_counters conditions cost in
              let pruned =
                Brute_force.search_pruned ~counters:pruned_counters conditions ~bound cost
              in
              if exact <> pruned then
                add
                  [ D.v ~invariant:"oracle/pruned-grid-vs-exhaustive"
                      "pruned grid search diverged for %s at %.2f GB (%.6f vs %.6f)"
                      (Join_impl.to_string impl) small_gb (snd pruned) (snd exact) ];
              if
                Counters.cost_evaluations pruned_counters
                > Counters.cost_evaluations exhaustive_counters
              then
                add
                  [ D.v ~invariant:"oracle/pruned-extra-evals"
                      "pruned grid search costed %d configs, exhaustive %d, for %s at %.2f GB"
                      (Counters.cost_evaluations pruned_counters)
                      (Counters.cost_evaluations exhaustive_counters)
                      (Join_impl.to_string impl) small_gb ])
        [ 0.1; 1.0; 3.0; 8.0; 25.0 ])
    Join_impl.all;

  (* ------------------------------------------------ compiled cost kernels *)
  (* The kernel path must be bit-identical to the scalar oracle baseline —
     same floats at every grid point, same winners and tie-breaks from every
     search, same evaluation counts — across both join implementations and
     the same build-side size spread as the pruned arms. *)
  let scratch = Raqo_cost.Kernel.create_scratch () in
  List.iter
    (fun impl ->
      List.iter
        (fun small_gb ->
          match Raqo_cost.Kernel.make model impl ~small_gb with
          | None ->
              (* The oracle model is paper-space; a refusal here is a bug. *)
              add
                [ D.v ~invariant:"oracle/kernel-refused"
                    "kernel failed to compile the paper-space model for %s at %.2f GB"
                    (Join_impl.to_string impl) small_gb ]
          | Some kernel ->
              let cost r = Op_cost.predict_exn model impl ~small_gb ~resources:r in
              (* Pointwise: Kernel.predict = Op_cost.predict_exn on every
                 grid configuration, bitwise (infinity mask included). *)
              List.iter
                (fun (r : Resources.t) ->
                  let k = Raqo_cost.Kernel.predict_resources kernel r in
                  let s = cost r in
                  if not (Float.equal k s) then
                    add
                      [ D.v ~invariant:"oracle/kernel-point-vs-scalar"
                          "kernel cost diverged for %s at %.2f GB, %d x %.1f GB (%h vs %h)"
                          (Join_impl.to_string impl) small_gb r.Resources.containers
                          r.Resources.container_gb k s ])
                (Conditions.all_configs conditions);
              (* Exhaustive sweep vs scalar scan: identical tuple and counts. *)
              let kc = Counters.create () and sc = Counters.create () in
              let swept = Brute_force.search_kernel ~counters:kc conditions ~kernel ~scratch in
              let scanned = Brute_force.search ~counters:sc conditions cost in
              if swept <> scanned then
                add
                  [ D.v ~invariant:"oracle/kernel-sweep-vs-scalar"
                      "kernel grid sweep diverged for %s at %.2f GB (%.6f vs %.6f)"
                      (Join_impl.to_string impl) small_gb (snd swept) (snd scanned) ];
              if Counters.cost_evaluations kc <> Counters.cost_evaluations sc then
                add
                  [ D.v ~invariant:"oracle/kernel-sweep-evals"
                      "kernel sweep counted %d evaluations, scalar %d, for %s at %.2f GB"
                      (Counters.cost_evaluations kc) (Counters.cost_evaluations sc)
                      (Join_impl.to_string impl) small_gb ];
              (* Kernel sweep vs the pooled scalar partition, per pool size:
                 the kernel path is single-domain but must return what any
                 partitioning returns. *)
              List.iter
                (fun j ->
                  if j > 1 then
                    Pool.with_pool ~jobs:j (fun pool ->
                        let par = Brute_force.search_par pool conditions cost in
                        if swept <> par then
                          add
                            [ D.v ~invariant:"oracle/kernel-sweep-vs-par"
                                "kernel sweep diverged from %d-way partitioned scan for %s at %.2f GB"
                                j (Join_impl.to_string impl) small_gb ]))
                jobs;
              (* Pruned search: kernel bounds replicate the scalar bound
                 closure, so the visit pattern — hence result and distinct
                 evaluation count — must match exactly. *)
              (match Op_cost.region_lower_bound model impl ~small_gb with
              | None -> ()
              | Some bound ->
                  let kc = Counters.create () and sc = Counters.create () in
                  let kp =
                    Brute_force.search_pruned_kernel ~counters:kc conditions ~kernel ~scratch
                  in
                  let sp = Brute_force.search_pruned ~counters:sc conditions ~bound cost in
                  if kp <> sp || Counters.cost_evaluations kc <> Counters.cost_evaluations sc
                  then
                    add
                      [ D.v ~invariant:"oracle/kernel-pruned-vs-scalar"
                          "kernel pruned search diverged for %s at %.2f GB (%d evals vs %d)"
                          (Join_impl.to_string impl) small_gb (Counters.cost_evaluations kc)
                          (Counters.cost_evaluations sc) ]);
              (* Hill climbing probes through the kernel must trace the same
                 trajectory: same optimum, same cost, same evaluations. *)
              let kc = Counters.create () and sc = Counters.create () in
              let start =
                match impl with
                | Join_impl.Smj -> None
                | Join_impl.Bhj ->
                    Some
                      (Conditions.clamp conditions
                         (Resources.make ~containers:1
                            ~container_gb:(Float.min conditions.max_gb (Float.max 1.0 small_gb))))
              in
              let kh =
                Raqo_resource.Hill_climb.plan_kernel ~counters:kc ?start conditions kernel
              in
              let sh = Raqo_resource.Hill_climb.plan ~counters:sc ?start conditions cost in
              if kh <> sh || Counters.cost_evaluations kc <> Counters.cost_evaluations sc then
                add
                  [ D.v ~invariant:"oracle/kernel-hillclimb-vs-scalar"
                      "kernel hill climb diverged for %s at %.2f GB" (Join_impl.to_string impl)
                      small_gb ])
        [ 0.1; 1.0; 3.0; 8.0; 25.0 ])
    Join_impl.all;

  (* Joint planning with kernels on must be bit-identical to kernels off —
     plans, costs, and instrumentation — under both search strategies. *)
  List.iter
    (fun (label, strategy, pruned) ->
      let run kernel =
        let counters = Counters.create () in
        let rp =
          Resource_planner.create ~strategy ~pruned ~cache:false ~kernel ~counters conditions
        in
        let coster = fault ~arm:("raqo-kernel-" ^ label) (Coster.raqo model schema rp) in
        let result = Selinger.optimize coster schema rels in
        (result, Counters.cost_evaluations counters, Counters.planner_invocations counters)
      in
      let on = run true and off = run false in
      if on <> off then
        add
          [ D.v ~invariant:"oracle/kernel-joint-vs-scalar"
              "kernelised joint planning (%s) diverged from the scalar path" label ])
    [
      ("bf", Resource_planner.Brute_force, false);
      ("bf-pruned", Resource_planner.Brute_force, true);
      ("hc", Resource_planner.Hill_climb, false);
    ];

  (* The pruned joint arm must be bit-identical to the uncached exhaustive
     arm: same plan, same cost, never more cost-model evaluations. *)
  let rp_pruned =
    Resource_planner.create ~strategy:Resource_planner.Brute_force ~pruned:true ~cache:false
      conditions
  in
  let pruned_coster = fault ~arm:"raqo-bf-pruned" (Coster.raqo model schema rp_pruned) in
  let raqo_bf_pruned = validate "raqo-bf-pruned" (Selinger.optimize pruned_coster schema rels) in
  relate "oracle/raqo-pruned-vs-exhaustive"
    "pruned resource search must pick the exhaustive joint optimum"
    (fun a b -> a = b)
    (cost raqo_bf_pruned) (cost raqo_bf_nocache);

  (* Resource-plan cache answers must stay within their lookup radius and
     reproduce the stored entries (exercises every lookup policy against the
     entries the joint arms populated). *)
  (match Resource_planner.cache rp_bf with
  | None -> ()
  | Some cache ->
      List.iter
        (fun key ->
          let entry_keys = List.map fst (Plan_cache.entries cache ~key) in
          let probes =
            List.sort_uniq compare
              (List.concat_map (fun k -> [ k; k +. 0.05; k *. (1.0 +. 1e-12) ]) entry_keys
              @ [ 0.0; 0.25; 1.0; 3.7 ])
          in
          List.iter
            (fun data_gb ->
              List.iter
                (fun lookup -> add (Invariant.check_cache_lookup cache ~key ~data_gb lookup))
                [ Plan_cache.Exact; Plan_cache.Nearest_neighbor 0.5; Plan_cache.Weighted_average 0.5 ])
            probes)
        (Plan_cache.keys cache));

  (* ---------------------------------------------------- logical rewrite arms *)
  (* The rewrite memo's contract, per seed. No-op hints (no filters,
     everything referenced) must leave both outputs physically untouched —
     [==], not structural equality — because the zero-rewrite fast path
     promises no rebuild. Count-star hints (nothing projected) let FK-leaf
     and constant absorption plus width narrowing fire; the rewritten query
     must stay a connected subset of the original, and the exact planners'
     optimum over it must not exceed the original's — as plain floats, no
     tolerance, because every rule is cost-equivalent-or-better under the
     floored model. *)
  let rw = Rewrite.create schema in
  if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_arms;
  if Rewrite.apply rw ~hints:Rewrite.no_hints rels then
    add [ D.v ~invariant:"oracle/rewrite-noop-changed" "no-op hints reported a rewrite" ]
  else begin
    if not (Rewrite.schema_out rw == schema) then
      add [ D.v ~invariant:"oracle/rewrite-noop-schema" "no-op hints rebuilt the schema" ];
    if not (Rewrite.relations_out rw == rels) then
      add
        [ D.v ~invariant:"oracle/rewrite-noop-relations"
            "no-op hints rebuilt the relation list" ]
  end;
  let count_star = { Rewrite.filters = []; referenced = Some [] } in
  let rw_changed = Rewrite.apply rw ~hints:count_star rels in
  let schema' = Rewrite.schema_out rw and rels' = Rewrite.relations_out rw in
  let rw_report = Rewrite.last rw in
  if rw_changed then begin
    if not (List.for_all (fun r -> List.mem r rels) rels') then
      add
        [ D.v ~invariant:"oracle/rewrite-subset"
            "rewritten query references a relation outside the original" ];
    if n >= 2 && List.length rels' < 2 then
      add
        [ D.v ~invariant:"oracle/rewrite-degenerate"
            "rewrite absorbed the query below two relations" ];
    if not (Schema.joinable schema' rels') then
      add
        [ D.v ~invariant:"oracle/rewrite-disconnected"
            "rewrite disconnected the join graph" ];
    if rw_report.Rewrite.removed <> n - List.length rels' then
      add
        [ D.v ~invariant:"oracle/rewrite-removed-count"
            "rewrite report counts %d removals, relation list shrank by %d"
            rw_report.Rewrite.removed
            (n - List.length rels') ]
  end
  else if not (schema' == schema && rels' == rels) then
    add
      [ D.v ~invariant:"oracle/rewrite-unchanged-rebuild"
          "unchanged rewrite rebuilt its outputs" ];
  let rw_sel =
    Selinger.optimize
      (fault ~arm:"rewrite-selinger" (Coster.fixed model schema' fixed_resources))
      schema' rels'
  in
  relate "oracle/rewrite-selinger-never-worse"
    "rewritten left-deep optimum must be <= the original (plain floats)"
    (fun a b -> a <= b)
    (cost rw_sel) (cost sel);
  if n <= 14 then begin
    let rw_dp =
      Dpsub.optimize
        (fault ~arm:"rewrite-dpsub" (Coster.fixed model schema' fixed_resources))
        schema' rels'
    in
    relate "oracle/rewrite-dpsub-never-worse"
      "rewritten bushy optimum must be <= the original (plain floats)"
      (fun a b -> a <= b)
      (cost rw_dp) (cost dpsub)
  end;

  (* Cost_based threading: with no-op hints, rewrite-on is bit-identical to
     rewrite-off; with count-star hints the brute-force joint optimum is
     never worse; and the rewritten shared-memo parallel DP reproduces the
     sequential sweep bitwise at every pool size. *)
  let cb_run ?(hints = Rewrite.no_hints) ~rewrite kind pool_jobs =
    let t =
      Cost_based.create ~kind ~kernel:false
        ~resource_strategy:Resource_planner.Brute_force ~rewrite ~rewrite_hints:hints
        ~model ~conditions schema
    in
    match pool_jobs with
    | None -> Cost_based.optimize t rels
    | Some j -> Pool.with_pool ~jobs:j (fun pool -> Cost_based.optimize_par t pool rels)
  in
  let cb_off = cb_run ~rewrite:false Cost_based.Selinger None in
  let cb_on = cb_run ~rewrite:true Cost_based.Selinger None in
  if cb_on <> cb_off then
    add
      [ D.v ~invariant:"oracle/rewrite-default-identity"
          "rewrite-on with no-op hints diverged from rewrite-off (Selinger joint)" ];
  let cb_hinted = cb_run ~hints:count_star ~rewrite:true Cost_based.Selinger None in
  relate "oracle/rewrite-joint-never-worse"
    "hinted joint optimum must be <= the unrewritten joint optimum (plain floats)"
    (fun a b -> a <= b)
    (cost cb_hinted) (cost cb_off);
  if n <= 10 then begin
    let seq = cb_run ~hints:count_star ~rewrite:true Cost_based.Bushy_dp None in
    List.iter
      (fun j ->
        if j > 1 then begin
          let par = cb_run ~hints:count_star ~rewrite:true Cost_based.Bushy_dp (Some j) in
          if par <> seq then
            add
              [ D.v ~invariant:"oracle/rewrite-par-vs-seq"
                  "rewritten shared-memo DP (%d jobs) diverged from sequential" j ]
        end)
      jobs
  end;

  !diags

(* ------------------------------------------- adaptive re-optimization arm *)

type masked_fault = Coster.masked -> Coster.masked

let no_masked_fault : masked_fault = fun c -> c

let adaptive_dists : Estimation_error.dist list =
  [
    Estimation_error.Exact;
    Estimation_error.Lognormal 0.6;
    Estimation_error.Skew 0.8;
    Estimation_error.Correlated 0.8;
  ]

(* The error stream is decoupled from the instance stream so the same seed
   never feeds both the schema generator and the perturbation. *)
let adaptive_error_seed seed = (seed * 37) + 11

let check_adaptive ?(jobs = [ 2; 4 ]) ?(dists = adaptive_dists) ?(fault = no_masked_fault) t
    =
  let diags = ref [] in
  let add ds = diags := !diags @ ds in
  let truth = t.schema and rels = t.relations in
  let n = List.length rels in
  let latency = Adaptive_exec.latency in
  (* Static plans come from the *estimates* — the optimizer never sees the
     truth; only the adaptive executor's materialization boundaries do. *)
  let planners =
    ("selinger",
     fun estimates rp -> Selinger.optimize (Coster.raqo model estimates rp) estimates rels)
    :: (if n <= 10 then
          [
            ("dpsub",
             fun estimates rp ->
               Dpsub.optimize (Coster.raqo model estimates rp) estimates rels);
          ]
        else [])
  in
  List.iter
    (fun dist ->
      let error = Estimation_error.make dist ~seed:(adaptive_error_seed t.seed) in
      let estimates = Estimation_error.perturb error truth in
      List.iter
        (fun (pname, optimize) ->
          let engines =
            Engine.hive :: (if pname = "dpsub" then [ Engine.spark ] else [])
          in
          List.iter
            (fun (engine : Engine.t) ->
              let arm =
                Printf.sprintf "adaptive/%s/%s/%s" pname engine.Engine.name
                  (Estimation_error.dist_name error)
              in
              match optimize estimates (Resource_planner.create conditions) with
              | None -> () (* no feasible static plan: nothing to execute *)
              | Some (plan, _est_cost) ->
                  if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_arms;
                  let report =
                    Adaptive_exec.run ~fault ~engine ~model ~conditions ~truth ~estimates
                      plan
                  in
                  (* The report's static path must be bit-identical to the
                     independent tree simulator — the differential anchor
                     every other relation leans on. *)
                  (match
                     (report.Adaptive_exec.static_outcome, Simulate.run_joint engine truth plan)
                   with
                  | Adaptive_exec.Done { seconds; gb_seconds }, Ok run ->
                      if
                        not
                          (Float.equal seconds run.Simulate.seconds
                          && Float.equal gb_seconds run.Simulate.gb_seconds)
                      then
                        add
                          [ D.v ~invariant:"oracle/adaptive-static-vs-simulate"
                              "%s: static path diverged from Simulate.run_joint (%h vs %h s)"
                              arm seconds run.Simulate.seconds ]
                  | Adaptive_exec.Oom _, Error _ -> ()
                  | Adaptive_exec.Done _, Error reason ->
                      add
                        [ D.v ~invariant:"oracle/adaptive-static-vs-simulate"
                            "%s: static path completed but the simulator failed (%s)" arm
                            reason ]
                  | Adaptive_exec.Oom _, Ok _ ->
                      add
                        [ D.v ~invariant:"oracle/adaptive-static-vs-simulate"
                            "%s: static path failed but the simulator completed" arm ]);
                  (* Zero-error identity: no estimation error means no replan
                     fires and the adaptive run is bit-identical to static. *)
                  if dist = Estimation_error.Exact then begin
                    if report.Adaptive_exec.replans <> 0 then
                      add
                        [ D.v ~invariant:"oracle/adaptive-exact-replans"
                            "%s: %d re-plans fired under zero estimation error" arm
                            report.Adaptive_exec.replans ];
                    if report.Adaptive_exec.adaptive_plan <> report.Adaptive_exec.static_plan
                    then
                      add
                        [ D.v ~invariant:"oracle/adaptive-exact-plan"
                            "%s: adaptive plan differs from static under zero error" arm ];
                    if
                      report.Adaptive_exec.adaptive_outcome
                      <> report.Adaptive_exec.static_outcome
                    then
                      add
                        [ D.v ~invariant:"oracle/adaptive-exact-outcome"
                            "%s: adaptive outcome not bit-identical to static under zero \
                             error"
                            arm ]
                  end;
                  (* Never-worse, as plain floats — no tolerance. *)
                  if
                    not
                      (latency report.Adaptive_exec.adaptive_outcome
                      <= latency report.Adaptive_exec.static_outcome)
                  then
                    add
                      [ D.v ~invariant:"oracle/adaptive-never-worse"
                          "%s: adaptive latency %h exceeds static %h (replans=%d switches=%d)"
                          arm
                          (latency report.Adaptive_exec.adaptive_outcome)
                          (latency report.Adaptive_exec.static_outcome)
                          report.Adaptive_exec.replans report.Adaptive_exec.switches ];
                  (match
                     ( report.Adaptive_exec.static_outcome,
                       report.Adaptive_exec.adaptive_outcome )
                   with
                  | Adaptive_exec.Done _, Adaptive_exec.Oom _ ->
                      add
                        [ D.v ~invariant:"oracle/adaptive-oom-regression"
                            "%s: adaptive run failed where the static run completed" arm ]
                  | _ -> ());
                  (* Pool bit-identity: the shared-memo parallel re-planner
                     must reproduce the sequential report exactly, at every
                     pool size. One planner/engine cell keeps the arm cheap. *)
                  if pname = "dpsub" && engine.Engine.name = "hive" then
                    List.iter
                      (fun j ->
                        if j > 1 then
                          Pool.with_pool ~jobs:j (fun pool ->
                              let par =
                                Adaptive_exec.run ~pool ~fault ~engine ~model ~conditions
                                  ~truth ~estimates plan
                              in
                              if par <> report then
                                add
                                  [ D.v ~invariant:"oracle/adaptive-par-vs-seq"
                                      "%s: adaptive report with a %d-domain pool diverged \
                                       from sequential"
                                      arm j ]))
                      jobs)
            engines)
        planners)
    dists;
  !diags

(* ------------------------------------------- workload allocator arm *)

module Surface = Raqo_alloc.Surface
module Allocator = Raqo_alloc.Allocator
module Alloc_workload = Raqo_alloc.Workload
module Pricing = Raqo_cluster.Pricing

(* Decoupled from both the instance stream and the adaptive error stream. *)
let alloc_seed seed = (seed * 69_069) + 5

let alloc_queries = 4
let alloc_budget = 16
let alloc_fairness = 0.5

(* Derives a small workload from the instance: the instance's own query plus
   three more connected queries over the same schema, heavy-tailed arrivals,
   alternating tenants/weights, and SLOs pinned just above each query's best
   latency so the violations axis is live but not saturated. *)
let alloc_workload t =
  let rng = Rng.create (alloc_seed t.seed) in
  let arrivals =
    Alloc_workload.arrivals (Rng.split rng) ~n:alloc_queries ~rate:0.5
      ~capacity:alloc_budget
  in
  let joins = min t.joins (t.tables - 1) in
  let plan rels =
    let opt =
      Cost_based.create ~resource_strategy:Resource_planner.Brute_force ~model
        ~conditions t.schema
    in
    Cost_based.optimize opt rels
  in
  List.init alloc_queries (fun i ->
      if i = 0 then t.relations else Random_schema.query rng t.schema ~joins)
  |> List.mapi (fun i rels ->
         match plan rels with
         | None -> None
         | Some (joint, cost) ->
             let name = Printf.sprintf "q%d" i in
             let surface =
               Surface.build ~model ~conditions ~schema:t.schema ~name joint
             in
             let best = Surface.latency_at surface (Surface.max_cap surface) in
             Some
               ( joint,
                 cost,
                 {
                   Allocator.name;
                   tenant = Printf.sprintf "t%d" (i mod 2);
                   weight = 1.0 +. float_of_int (i mod 2);
                   arrival = arrivals.(i);
                   slo = (if i mod 2 = 0 then Some (best *. 1.25) else None);
                   surface;
                 } ))
  |> List.filter_map Fun.id

let check_alloc ?(jobs = [ 2; 4 ]) t =
  let diags = ref [] in
  let add ds = diags := !diags @ ds in
  let arm () = if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_arms in
  let planned = alloc_workload t in
  let queries = Array.of_list (List.map (fun (_, _, q) -> q) planned) in
  let pricing =
    let rng = Rng.create (alloc_seed t.seed + 1) in
    Pricing.spot
      ~swings:(Pricing.random_swings rng ~horizon:1000.0 ~segments:3)
      Pricing.default
  in

  (* Surfaces: monotone nonincreasing, finite, and — because the joint plans
     come from brute-force resource search over the same grid — the full-cap
     latency re-derives the planner's estimated cost. *)
  arm ();
  List.iter
    (fun (_joint, cost, (q : Allocator.query)) ->
      let lats = Surface.latencies q.Allocator.surface in
      Array.iteri
        (fun i l ->
          if not (Float.is_finite l) then
            add
              [ D.v ~invariant:"alloc/surface-finite" "%s: non-finite latency at cap index %d"
                  q.Allocator.name i ];
          if i > 0 && l > lats.(i - 1) then
            add
              [ D.v ~invariant:"alloc/surface-monotone"
                  "%s: latency increases with the container cap (%h -> %h)"
                  q.Allocator.name lats.(i - 1) l ])
        lats;
      let full = lats.(Array.length lats - 1) in
      if not (approx_eq full cost) then
        add
          [ D.v ~invariant:"alloc/surface-vs-plan-cost"
              "%s: full-cap surface latency must re-derive the joint plan cost (%.6f vs %.6f)"
              q.Allocator.name full cost ])
    planned;

  if Array.length queries > 0 then begin
    let floors = Allocator.floors ~budget:alloc_budget ~fairness:alloc_fairness queries in
    let check_points arm_name (outcome : Allocator.outcome) =
      List.iter
        (fun (p : Allocator.point) ->
          if Array.fold_left ( + ) 0 p.Allocator.alloc > alloc_budget then
            add
              [ D.v ~invariant:"alloc/frontier-budget" "%s: frontier point over budget (%d > %d)"
                  arm_name
                  (Array.fold_left ( + ) 0 p.Allocator.alloc)
                  alloc_budget ];
          Array.iteri
            (fun i c ->
              if c < floors.(i) then
                add
                  [ D.v ~invariant:"alloc/frontier-fairness"
                      "%s: query %d below its fairness floor (%d < %d)" arm_name i c floors.(i) ])
            p.Allocator.alloc;
          let re = Allocator.evaluate ~pricing queries p.Allocator.alloc in
          if
            not
              (Float.equal re.Allocator.makespan p.Allocator.makespan
              && Float.equal re.Allocator.dollars p.Allocator.dollars
              && re.Allocator.violations = p.Allocator.violations)
          then
            add
              [ D.v ~invariant:"alloc/frontier-reprice"
                  "%s: stored objective vector diverges from re-evaluation" arm_name ];
          List.iter
            (fun (q : Allocator.point) ->
              if q != p && Allocator.dominates q p then
                add
                  [ D.v ~invariant:"alloc/frontier-dominated"
                      "%s: reported frontier point is dominated" arm_name ])
            outcome.Allocator.frontier)
        outcome.Allocator.frontier;
      match outcome.Allocator.frontier with
      | [] -> add [ D.v ~invariant:"alloc/frontier-empty" "%s: empty frontier" arm_name ]
      | best :: _ ->
          (* Frontier is sorted by makespan: the head is the global makespan
             optimum, which may never exceed the naive equal split. *)
          if not (best.Allocator.makespan <= outcome.Allocator.equal_split.Allocator.makespan)
          then
            add
              [ D.v ~invariant:"alloc/never-worse-than-equal-split"
                  "%s: best makespan %h exceeds the equal split's %h" arm_name
                  best.Allocator.makespan outcome.Allocator.equal_split.Allocator.makespan ]
    in
    arm ();
    let exact =
      Allocator.exact ~pricing ~budget:alloc_budget ~fairness:alloc_fairness queries
    in
    (match exact with
    | None ->
        add
          [ D.v ~invariant:"alloc/exact-too-large"
              "exact DP overflowed its state bound on an oracle-sized workload" ]
    | Some o -> check_points "alloc-exact" o);
    arm ();
    let seed = alloc_seed t.seed + 2 in
    let rand =
      Allocator.randomized ~pricing ~seed ~budget:alloc_budget ~fairness:alloc_fairness
        queries
    in
    check_points "alloc-randomized" rand;
    let rand2 =
      Allocator.randomized ~pricing ~seed ~budget:alloc_budget ~fairness:alloc_fairness
        queries
    in
    if rand.Allocator.frontier <> rand2.Allocator.frontier then
      add
        [ D.v ~invariant:"alloc/randomized-deterministic"
            "equal-seed randomized searches diverged" ];
    (* Differential: the exact frontier covers every randomized point — the
       DP enumerates the full grid space the local search walks, and both
       price allocations through the same evaluator. *)
    (match exact with
    | None -> ()
    | Some e ->
        List.iter
          (fun (r : Allocator.point) ->
            if
              not
                (List.exists
                   (fun (p : Allocator.point) -> Allocator.covers p r)
                   e.Allocator.frontier)
            then
              add
                [ D.v ~invariant:"alloc/exact-dominates-randomized"
                    "randomized frontier point (m=%h $=%h v=%d) not covered by the exact DP"
                    r.Allocator.makespan r.Allocator.dollars r.Allocator.violations ])
          rand.Allocator.frontier);
    (* Pool bit-identity: surfaces are per-query independent, so building
       them across a domain pool must reproduce the sequential curves
       bit-for-bit at every pool size. *)
    List.iter
      (fun j ->
        if j > 1 then begin
          arm ();
          Pool.with_pool ~jobs:j (fun pool ->
              let par =
                Pool.parallel_map pool
                  (fun (joint, _, (q : Allocator.query)) ->
                    Surface.build ~model ~conditions ~schema:t.schema
                      ~name:q.Allocator.name joint)
                  planned
              in
              List.iter2
                (fun (_, _, (q : Allocator.query)) surface ->
                  if
                    Surface.latencies surface <> Surface.latencies q.Allocator.surface
                    || Surface.gb_seconds_curve surface
                       <> Surface.gb_seconds_curve q.Allocator.surface
                  then
                    add
                      [ D.v ~invariant:"alloc/par-vs-seq"
                          "%s: surface built on a %d-domain pool diverged from sequential"
                          q.Allocator.name j ])
                planned par)
        end)
      jobs
  end;
  !diags
