(** Cross-planner differential oracle. One random instance (schema + query)
    is driven through every planner (Selinger, pruned Selinger, memoized
    Selinger, DPsub, exhaustive, randomized Trummer–Koch), every
    resource-planning mode (fixed two-step baseline, joint brute force with
    and without the resource-plan cache, joint hill climbing), and both
    sequential and parallel execution ([jobs]); the relations that must hold
    between their answers are asserted and every violation reported as a
    {!Diagnostic.t}.

    Enforced relations (see DESIGN.md, "Verification layer"):
    - every emitted plan passes {!Invariant.check_joint};
    - DPsub = exhaustive bushy oracle (both exact over the same space);
    - exhaustive <= Selinger and DPsub <= Selinger (bushy space contains
      left-deep), with equality for queries of <= 3 relations;
    - DPsub <= randomized search; Selinger <= greedy left-deep;
    - bound-pruned Selinger = plain Selinger (non-negative floored costs);
    - memoized coster = plain coster, and never more underlying lookups;
    - parallel randomized restarts and partitioned brute-force grids are
      bit-identical to their sequential counterparts for a fixed seed;
    - joint brute force <= joint hill climbing <= nothing (local optima),
      and joint brute force <= the fixed baseline at an in-grid config;
    - exact-lookup caching does not change the brute-force joint optimum;
    - every cache lookup policy answers within its radius
      ({!Invariant.check_cache_lookup}). *)

type instance = {
  seed : int;
  tables : int;  (** tables in the generated schema *)
  joins : int;  (** requested joins (query has at most [joins + 1] relations) *)
  schema : Raqo_catalog.Schema.t;
  relations : string list;  (** the query: a connected relation subset *)
}

val default_tables : int
val default_joins : int

(** [instance ?tables ?joins seed] deterministically generates a random
    schema and a connected random query from [seed]. *)
val instance : ?tables:int -> ?joins:int -> int -> instance

(** [with_relations t rels] re-targets the query (used by shrinking). *)
val with_relations : instance -> string list -> instance

val pp_instance : Format.formatter -> instance -> unit

(** A fault injects a wrapper around the coster of the named oracle arm —
    the hook tests use to prove the oracle catches broken costers (arms:
    ["selinger"], ["selinger-pruned"], ["selinger-memo"], ["dpsub"],
    ["exhaustive"], ["randomized"], ["randomized-par"], ["greedy"],
    ["raqo-bf"], ["raqo-bf-nocache"], ["raqo-bf-par"], ["raqo-hc"]). *)
type fault = arm:string -> Raqo_planner.Coster.t -> Raqo_planner.Coster.t

val no_fault : fault

(** The compact cluster conditions the oracle plans against (brute-force
    tractable), and the in-grid fixed configuration of its two-step arms. *)
val conditions : Raqo_cluster.Conditions.t

val fixed_resources : Raqo_cluster.Resources.t

(** The floored (non-negative) paper cost model the oracle costs with. *)
val model : Raqo_cost.Op_cost.t

(** [check ?jobs ?fault t] runs every arm and returns the violated
    invariants ([] = the instance is consistent). [jobs] lists the pool
    sizes for the parallel arms (default [[2; 4]]; values [<= 1] are
    skipped). *)
val check : ?jobs:int list -> ?fault:fault -> instance -> Diagnostic.t list

(** A fault seam for the adaptive arm: wraps every *re-planning* coster
    inside {!Raqo_adaptive.Adaptive_exec.run}. A wrapper that raises forces
    the fallback path (the incumbent remainder keeps running), under which
    every adaptive invariant below must still hold. *)
type masked_fault = Raqo_planner.Coster.masked -> Raqo_planner.Coster.masked

val no_masked_fault : masked_fault

(** The error distributions the adaptive arm sweeps: exact (zero error),
    lognormal 0.6, skew 0.8, correlated 0.8. *)
val adaptive_dists : Raqo_execsim.Estimation_error.dist list

(** [adaptive_error_seed seed] derives the perturbation seed the adaptive
    arm uses for instance [seed] (printed in fuzz repros). *)
val adaptive_error_seed : int -> int

(** [check_adaptive ?jobs ?dists ?fault t] runs the runtime-adaptive
    re-optimization arm: for every error distribution, a static plan is
    optimized from the perturbed estimate schema (Selinger always, bushy DP
    for queries of [<= 10] relations) and executed against the ground truth
    by {!Raqo_adaptive.Adaptive_exec}, on Hive (and Spark for the DP arm).
    Asserted, all bitwise:
    - the report's static path equals {!Raqo_execsim.Simulate.run_joint};
    - zero error ([Exact]) fires no re-plan and leaves plan and outcome
      bit-identical to static;
    - adaptive latency [<=] static latency as plain floats (re-planning cost
      included), and a completed static run is never turned into a failure;
    - the report is bit-identical at every pool size in [jobs]. *)
val check_adaptive :
  ?jobs:int list ->
  ?dists:Raqo_execsim.Estimation_error.dist list ->
  ?fault:masked_fault ->
  instance ->
  Diagnostic.t list

(** The derived workload the allocator arm searches: the instance's query
    plus three more over the same schema (4 queries, budget 16, fairness
    0.5), with heavy-tailed arrivals and a seeded spot-price schedule. *)
val alloc_queries : int

val alloc_budget : int
val alloc_fairness : float

(** [check_alloc ?jobs t] runs the workload-allocator differential arm:
    response surfaces must be finite, monotone nonincreasing, and re-derive
    the brute-force joint plan cost at full cap; every reported frontier
    point must be within budget, above its fairness floor, re-priceable to
    the identical objective vector, and non-dominated; the best makespan
    must never exceed the naive equal split's (both modes); equal-seed
    randomized searches must be bit-identical; the exact DP frontier must
    cover every randomized frontier point; and surfaces built across a
    domain pool must be bit-identical to sequential for every pool size in
    [jobs]. *)
val check_alloc : ?jobs:int list -> instance -> Diagnostic.t list
