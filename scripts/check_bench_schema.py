#!/usr/bin/env python3
"""Fail when the BENCH_*.json artifacts disagree on schema_version.

The bench jobs each overwrite one committed BENCH_*.json in the CI
workspace, so running this afterwards compares the freshly generated file
against every other committed artifact. A missing schema_version (the
pre-versioning format, schema 1) counts as a mismatch: it means a stale
artifact was committed without regenerating it against the current bench
harness.
"""

import glob
import json
import sys


def main() -> int:
    paths = sorted(glob.glob("BENCH_PR*.json"))
    if not paths:
        print("no BENCH_PR*.json files found", file=sys.stderr)
        return 1
    versions = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        versions[path] = doc.get("schema_version")
        if not isinstance(doc.get("figures"), list) or not doc["figures"]:
            print(f"{path}: no figures recorded", file=sys.stderr)
            return 1
    for path, version in versions.items():
        print(f"{path}: schema_version={version}")
    distinct = set(versions.values())
    if None in distinct:
        stale = [p for p, v in versions.items() if v is None]
        print(f"stale pre-versioning artifacts: {', '.join(stale)}", file=sys.stderr)
        return 1
    if len(distinct) != 1:
        print(f"schema_version drift across artifacts: {versions}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
