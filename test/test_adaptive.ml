(* Runtime adaptive re-optimization (lib/adaptive): the zero-error identity
   and never-worse theorems checked directly, a handcrafted OOM rescue with a
   BHJ->SMJ flip, mid-flight container re-sizing, fault-injected re-planning
   (fallback to the incumbent remainder, pool left usable — the strand-free
   proof of test_memo.ml at the adaptive layer), pool-size bit-identity, and
   the Remaining collapse algebra. *)

module Adaptive = Raqo_adaptive.Adaptive_exec
module Remaining = Raqo_adaptive.Remaining
module Estimation_error = Raqo_execsim.Estimation_error
module Engine = Raqo_execsim.Engine
module Simulate = Raqo_execsim.Simulate
module Oracle = Raqo_verify.Oracle
module Pool = Raqo_par.Pool
module Interned = Raqo_catalog.Interned
module Schema = Raqo_catalog.Schema
module Relation = Raqo_catalog.Relation
module Join_graph = Raqo_catalog.Join_graph
module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Conditions = Raqo_cluster.Conditions
module Resources = Raqo_cluster.Resources
module Coster = Raqo_planner.Coster
module Dpsub = Raqo_planner.Dpsub

let model = Oracle.model
let conditions = Oracle.conditions
let res nc gb = Resources.make ~containers:nc ~container_gb:gb

(* Plan an oracle instance's query with the bushy DP over [schema] (truth or
   a perturbed estimate schema). *)
let plan_with schema rels =
  let opt =
    Raqo.Cost_based.create ~kind:Raqo.Cost_based.Bushy_dp ~model ~conditions schema
  in
  match Raqo.Cost_based.optimize opt rels with
  | Some (plan, _) -> plan
  | None -> Alcotest.fail "bushy DP found no plan"

let run_adaptive ?pool ?fault ~engine ~truth ~estimates rels =
  let plan = plan_with estimates rels in
  Adaptive.run ?pool ?fault ~engine ~model ~conditions ~truth ~estimates plan

let error_of dist seed = Estimation_error.make dist ~seed

let rec annots = function
  | Join_tree.Scan _ -> []
  | Join_tree.Join (a, l, r) -> annots l @ annots r @ [ a ]

(* ------------------------------------------------------ zero-error identity *)

let test_zero_error_identity () =
  List.iter
    (fun seed ->
      let t = Oracle.instance ~tables:8 ~joins:6 seed in
      List.iter
        (fun engine ->
          let r =
            run_adaptive ~engine ~truth:t.Oracle.schema ~estimates:t.Oracle.schema
              t.Oracle.relations
          in
          let tag fmt =
            Printf.sprintf ("seed %d %s: " ^^ fmt) seed engine.Engine.name
          in
          Alcotest.(check int) (tag "no replans") 0 r.Adaptive.replans;
          Alcotest.(check int) (tag "no switches") 0 r.Adaptive.switches;
          Alcotest.(check int) (tag "no failures") 0 r.Adaptive.failed_replans;
          Alcotest.(check bool) (tag "plan unchanged") true
            (r.Adaptive.adaptive_plan = r.Adaptive.static_plan);
          Alcotest.(check bool) (tag "outcome bit-identical") true
            (r.Adaptive.adaptive_outcome = r.Adaptive.static_outcome);
          (* The report's static path is the execution simulator, bitwise. *)
          match
            (r.Adaptive.static_outcome, Simulate.run_joint engine t.Oracle.schema r.Adaptive.static_plan)
          with
          | Adaptive.Done { seconds; gb_seconds }, Ok sim ->
              Alcotest.(check bool) (tag "seconds = Simulate") true
                (Float.equal seconds sim.Simulate.seconds);
              Alcotest.(check bool) (tag "gb-seconds = Simulate") true
                (Float.equal gb_seconds sim.Simulate.gb_seconds)
          | Adaptive.Oom _, Error _ -> ()
          | _ -> Alcotest.fail (tag "static outcome disagrees with Simulate"))
        [ Engine.hive; Engine.spark ])
    [ 1; 2; 3; 4; 5; 6 ]

(* Exact's perturb must return the truth schema physically unchanged — the
   identity above hinges on it. *)
let test_exact_perturb_is_physical_identity () =
  let t = Oracle.instance 3 in
  Alcotest.(check bool) "physically equal" true
    (Estimation_error.perturb Estimation_error.exact t.Oracle.schema == t.Oracle.schema)

(* ------------------------------------------------------------- never-worse *)

let sweep_dists =
  [
    Estimation_error.Lognormal 0.6;
    Estimation_error.Skew 0.8;
    Estimation_error.Correlated 0.8;
  ]

let test_never_worse_sweep () =
  let replans = ref 0 and switches = ref 0 in
  List.iter
    (fun seed ->
      let t = Oracle.instance ~tables:8 ~joins:6 seed in
      List.iter
        (fun dist ->
          let error = error_of dist (100 + seed) in
          let estimates = Estimation_error.perturb error t.Oracle.schema in
          List.iter
            (fun engine ->
              let r =
                run_adaptive ~engine ~truth:t.Oracle.schema ~estimates t.Oracle.relations
              in
              replans := !replans + r.Adaptive.replans;
              switches := !switches + r.Adaptive.switches;
              let static_s = Adaptive.latency r.Adaptive.static_outcome in
              let adaptive_s = Adaptive.latency r.Adaptive.adaptive_outcome in
              (* Plain float <=, no tolerance: the differential guard makes
                 the adaptive clock replay the static one exactly until a
                 switch strictly improves the projection. *)
              Alcotest.(check bool)
                (Printf.sprintf "seed %d %s %s: adaptive %.6f <= static %.6f" seed
                   engine.Engine.name
                   (Estimation_error.to_string error)
                   adaptive_s static_s)
                true (adaptive_s <= static_s);
              match (r.Adaptive.static_outcome, r.Adaptive.adaptive_outcome) with
              | Adaptive.Done _, Adaptive.Oom _ ->
                  Alcotest.fail
                    (Printf.sprintf "seed %d: adaptive turned a completed run into an OOM" seed)
              | _ -> ())
            [ Engine.hive; Engine.spark ])
        sweep_dists)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  (* The sweep must actually exercise the machinery, not vacuously pass. *)
  Alcotest.(check bool) "re-planning fired" true (!replans > 0);
  Alcotest.(check bool) "some candidate won" true (!switches > 0)

(* ------------------------------------------------- OOM rescue: BHJ -> SMJ *)

(* A 3-relation chain where the estimates make a x b look like 100 rows but
   the truth materializes 20 GB: the static plan broadcasts that
   intermediate and dies; the adaptive run observes the true size at the
   stage boundary, re-plans the remainder, and switches to a sort-merge. *)
let rescue_truth, rescue_estimates =
  let rel name rows row_bytes = Relation.make ~name ~rows ~row_bytes in
  let rels = [ rel "a" 1e7 100.0; rel "b" 1e7 100.0; rel "c" 5e8 150.0 ] in
  let edge l r s = { Join_graph.left = l; right = r; selectivity = s } in
  let make ab_sel =
    Schema.make rels (Join_graph.make [ edge "a" "b" ab_sel; edge "b" "c" 1e-8 ])
  in
  (make 1e-6, make 1e-12)

let rescue_plan =
  Join_tree.Join
    ( (Join_impl.Bhj, res 10 3.0),
      Join_tree.Join ((Join_impl.Bhj, res 10 3.0), Join_tree.Scan "a", Join_tree.Scan "b"),
      Join_tree.Scan "c" )

let test_oom_rescue_flips_bhj_to_smj () =
  let r =
    Adaptive.run ~engine:Engine.hive ~model ~conditions ~truth:rescue_truth
      ~estimates:rescue_estimates rescue_plan
  in
  (match r.Adaptive.static_outcome with
  | Adaptive.Oom { stage; _ } -> Alcotest.(check int) "static dies at stage 1" 1 stage
  | Adaptive.Done _ -> Alcotest.fail "static plan should OOM under the truth");
  (match r.Adaptive.adaptive_outcome with
  | Adaptive.Done _ -> ()
  | Adaptive.Oom _ -> Alcotest.fail "adaptive run should rescue the OOM");
  Alcotest.(check bool) "a re-plan fired" true (r.Adaptive.replans >= 1);
  Alcotest.(check bool) "the candidate won" true (r.Adaptive.switches >= 1);
  (* The rescued remainder runs the 20 GB build as a sort-merge join. *)
  let last = List.nth r.Adaptive.stages (List.length r.Adaptive.stages - 1) in
  Alcotest.(check bool) "flipped to SMJ" true
    (Join_impl.equal last.Adaptive.impl Join_impl.Smj);
  Alcotest.(check bool) "switch recorded on the boundary stage" true
    (List.exists (fun s -> s.Adaptive.switched) r.Adaptive.stages);
  Alcotest.(check bool) "rescued latency is finite" true
    (Float.is_finite (Adaptive.latency r.Adaptive.adaptive_outcome))

(* ------------------------------------------------------ container re-size *)

let test_switch_resizes_containers () =
  (* Across a seeded sweep, at least one winning re-plan must change a
     stage's resource assignment, not just its operator — the joint
     query/resource re-optimization the subsystem exists for. *)
  let resized = ref false in
  List.iter
    (fun seed ->
      let t = Oracle.instance ~tables:8 ~joins:6 seed in
      let error = error_of (Estimation_error.Lognormal 1.0) (200 + seed) in
      let estimates = Estimation_error.perturb error t.Oracle.schema in
      let r =
        run_adaptive ~engine:Engine.hive ~truth:t.Oracle.schema ~estimates
          t.Oracle.relations
      in
      if r.Adaptive.switches > 0 then begin
        let static_res = List.map snd (annots r.Adaptive.static_plan) in
        let adaptive_res = List.map snd (annots r.Adaptive.adaptive_plan) in
        if static_res <> adaptive_res then resized := true
      end)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
  Alcotest.(check bool) "some switch re-sized resources" true !resized

(* --------------------------------------------------------- fault injection *)

exception Boom

let boom_fault (_ : Coster.masked) =
  {
    Coster.best_join_masked = (fun ~left:_ ~right:_ -> raise Boom);
    masked_name = "boom";
  }

(* A seed/error pair the never-worse sweep shows re-plans on. *)
let faulted_instance () =
  let t = Oracle.instance ~tables:8 ~joins:6 1 in
  let error = error_of (Estimation_error.Lognormal 0.6) 101 in
  (t, Estimation_error.perturb error t.Oracle.schema)

let check_fault_fallback ?pool () =
  let t, estimates = faulted_instance () in
  let clean = run_adaptive ?pool ~engine:Engine.hive ~truth:t.Oracle.schema ~estimates t.Oracle.relations in
  Alcotest.(check bool) "the instance re-plans at all" true (clean.Adaptive.replans > 0);
  let r =
    run_adaptive ?pool ~fault:boom_fault ~engine:Engine.hive ~truth:t.Oracle.schema
      ~estimates t.Oracle.relations
  in
  Alcotest.(check int) "every re-plan failed" r.Adaptive.replans r.Adaptive.failed_replans;
  Alcotest.(check bool) "failures counted" true (r.Adaptive.failed_replans > 0);
  Alcotest.(check int) "no switches" 0 r.Adaptive.switches;
  (* Fallback means the incumbent keeps running: the adaptive path must be
     bit-identical to the static one. *)
  Alcotest.(check bool) "plan unchanged" true
    (r.Adaptive.adaptive_plan = r.Adaptive.static_plan);
  Alcotest.(check bool) "outcome unchanged" true
    (r.Adaptive.adaptive_outcome = r.Adaptive.static_outcome)

let test_fault_falls_back_sequential () = check_fault_fallback ()

let test_fault_falls_back_pooled_and_pool_survives () =
  Pool.with_pool ~jobs:2 (fun pool ->
      check_fault_fallback ~pool ();
      (* The strand-free proof at this layer: after every re-plan raised on
         the pool's workers, the same pool still answers a clean parallel DP
         bit-identically to sequential — no claim was left stranded, no
         worker died (mirrors test_memo's fault recovery). *)
      let t, _ = faulted_instance () in
      let ctx = Interned.make t.Oracle.schema t.Oracle.relations in
      let coster () = Coster.fixed_masked model ctx (res 4 3.0) in
      let seq = Dpsub.optimize_masked (coster ()) ctx in
      Alcotest.(check bool) "pool usable after faulted re-plans" true
        (Dpsub.optimize_par_masked ~coster pool ctx = seq))

(* ------------------------------------------------------ pool bit-identity *)

let test_pooled_report_bit_identical () =
  let t, estimates = faulted_instance () in
  let seq = run_adaptive ~engine:Engine.hive ~truth:t.Oracle.schema ~estimates t.Oracle.relations in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let par =
            run_adaptive ~pool ~engine:Engine.hive ~truth:t.Oracle.schema ~estimates
              t.Oracle.relations
          in
          Alcotest.(check bool)
            (Printf.sprintf "report identical at %d jobs" jobs)
            true (par = seq)))
    [ 1; 2; 4 ]

(* -------------------------------------------------------------- validation *)

let test_run_rejects_invalid_plan () =
  let t = Oracle.instance 1 in
  let dup =
    match t.Oracle.relations with
    | a :: b :: _ ->
        Join_tree.Join ((Join_impl.Smj, res 4 3.0), Join_tree.Scan a,
          Join_tree.Join ((Join_impl.Smj, res 4 3.0), Join_tree.Scan b, Join_tree.Scan a))
    | _ -> Alcotest.fail "instance too small"
  in
  Alcotest.(check bool) "duplicate relation rejected" true
    (match
       Adaptive.run ~engine:Engine.hive ~model ~conditions ~truth:t.Oracle.schema
         ~estimates:t.Oracle.schema dup
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let unknown =
    Join_tree.Join ((Join_impl.Smj, res 4 3.0), Join_tree.Scan "nonesuch",
      Join_tree.Scan (List.hd t.Oracle.relations))
  in
  Alcotest.(check bool) "unknown relation rejected" true
    (match
       Adaptive.run ~engine:Engine.hive ~model ~conditions ~truth:t.Oracle.schema
         ~estimates:t.Oracle.schema unknown
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------- Remaining algebra *)

let test_collapse_counts_and_stats () =
  let plan = rescue_plan in
  (* executed = 0: unchanged over base relations. *)
  (match Remaining.collapse ~truth:rescue_truth ~estimates:rescue_estimates plan ~executed:0 with
  | Some rem ->
      Alcotest.(check (list string)) "all bases remain" [ "a"; "b"; "c" ]
        (List.map (fun (l : Remaining.leaf) -> l.Remaining.name) rem.Remaining.leaves)
  | None -> Alcotest.fail "collapse at 0 must keep the plan");
  (* executed = 1: a x b collapses into one pseudo-leaf with truth stats. *)
  (match Remaining.collapse ~truth:rescue_truth ~estimates:rescue_estimates plan ~executed:1 with
  | Some rem ->
      let leaf = List.hd rem.Remaining.leaves in
      Alcotest.(check string) "pseudo-leaf name" "a+b" leaf.Remaining.name;
      Alcotest.(check (list string)) "pseudo-leaf bases" [ "a"; "b" ] leaf.Remaining.bases;
      (* Materialized leaves carry ground truth, not the estimates. *)
      let truth_rows = Schema.join_rows rescue_truth [ "a"; "b" ] in
      Alcotest.(check bool) "truth statistics on the pseudo-leaf" true
        (Float.equal (Schema.join_rows rem.Remaining.schema [ "a+b" ]) truth_rows)
  | None -> Alcotest.fail "one join must remain");
  (* executed = n_joins: nothing remains. *)
  Alcotest.(check bool) "fully executed collapses to None" true
    (Remaining.collapse ~truth:rescue_truth ~estimates:rescue_estimates plan ~executed:2 = None)

(* ------------------------------------------------------ oracle integration *)

let test_oracle_adaptive_clean () =
  List.iter
    (fun seed ->
      let t = Oracle.instance seed in
      Alcotest.(check (list string)) (Printf.sprintf "seed %d clean" seed) []
        (List.map Raqo_verify.Diagnostic.to_string (Oracle.check_adaptive ~jobs:[ 2 ] t)))
    [ 1; 2; 3 ]

let test_oracle_adaptive_clean_under_fault () =
  (* A raising re-plan coster forces every fallback path; all adaptive
     invariants must still hold. *)
  List.iter
    (fun seed ->
      let t = Oracle.instance seed in
      Alcotest.(check (list string)) (Printf.sprintf "seed %d clean under fault" seed) []
        (List.map Raqo_verify.Diagnostic.to_string
           (Oracle.check_adaptive ~jobs:[ 2 ] ~fault:boom_fault t)))
    [ 1; 2 ]

let () =
  Alcotest.run "raqo_adaptive"
    [
      ( "identity",
        [
          Alcotest.test_case "zero error is bit-identical to static" `Quick
            test_zero_error_identity;
          Alcotest.test_case "Exact perturb is physical identity" `Quick
            test_exact_perturb_is_physical_identity;
        ] );
      ( "never-worse",
        [ Alcotest.test_case "adaptive <= static across seeds, dists, engines" `Quick
            test_never_worse_sweep ] );
      ( "rescue",
        [
          Alcotest.test_case "OOM rescue flips BHJ to SMJ" `Quick
            test_oom_rescue_flips_bhj_to_smj;
          Alcotest.test_case "a switch re-sizes containers" `Quick
            test_switch_resizes_containers;
        ] );
      ( "faults",
        [
          Alcotest.test_case "raising re-plan falls back (sequential)" `Quick
            test_fault_falls_back_sequential;
          Alcotest.test_case "raising re-plan falls back (pooled), pool survives" `Quick
            test_fault_falls_back_pooled_and_pool_survives;
        ] );
      ( "determinism",
        [ Alcotest.test_case "report bit-identical at every pool size" `Quick
            test_pooled_report_bit_identical ] );
      ( "validation",
        [ Alcotest.test_case "invalid plans rejected" `Quick test_run_rejects_invalid_plan ] );
      ( "remaining",
        [ Alcotest.test_case "collapse counts and statistics" `Quick
            test_collapse_counts_and_stats ] );
      ( "oracle",
        [
          Alcotest.test_case "check_adaptive clean on random instances" `Quick
            test_oracle_adaptive_clean;
          Alcotest.test_case "check_adaptive clean under fault injection" `Quick
            test_oracle_adaptive_clean_under_fault;
        ] );
    ]
