(* Tests for Raqo_alloc: response surfaces must be monotone and agree with
   the scalar cost model, the exact Pareto DP must produce a sound frontier
   that covers both the equal-split baseline and the randomized search, and
   the whole pipeline must be deterministic under a fixed seed. *)

module Oracle = Raqo_verify.Oracle
module Coster = Raqo_planner.Coster
module Selinger = Raqo_planner.Selinger
module Surface = Raqo_alloc.Surface
module Allocator = Raqo_alloc.Allocator
module Workload = Raqo_alloc.Workload
module Pricing = Raqo_cluster.Pricing
module Rng = Raqo_util.Rng

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* Surfaces from independent deterministic instances: the allocator is
   planner-agnostic, so queries drawn from different schemas mix freely. *)
let surface_of ?use_kernel seed =
  let inst = Oracle.instance seed in
  let coster = Coster.fixed Oracle.model inst.Oracle.schema Oracle.fixed_resources in
  match Selinger.optimize coster inst.Oracle.schema inst.Oracle.relations with
  | Some (plan, _cost) ->
      Surface.build ?use_kernel ~model:Oracle.model ~conditions:Oracle.conditions
        ~schema:inst.Oracle.schema
        ~name:(Printf.sprintf "q%d" seed)
        plan
  | None -> Alcotest.fail (Printf.sprintf "no joint plan for instance %d" seed)

let workload () =
  [|
    Allocator.query ~name:"a" (surface_of 5);
    Allocator.query ~tenant:"gold" ~weight:2.0 ~arrival:5.0 ~name:"b" (surface_of 6);
    Allocator.query ~tenant:"bronze" ~slo:0.05 ~name:"c" (surface_of 7);
  |]

let budget_for qs =
  Array.fold_left (fun acc (q : Allocator.query) -> acc + Surface.max_cap q.surface) 0 qs

let min_budget_for qs =
  Array.fold_left (fun acc (q : Allocator.query) -> acc + Surface.min_cap q.surface) 0 qs

(* -------------------------------------------------------------- surfaces *)

let test_surface_monotone () =
  let s = surface_of 5 in
  let caps = Surface.caps s in
  let lats = Surface.latencies s in
  Alcotest.(check int) "curves aligned" (Array.length caps) (Array.length lats);
  Alcotest.(check bool) "grid nonempty" true (Array.length caps > 0);
  for i = 1 to Array.length caps - 1 do
    Alcotest.(check bool) "caps ascending" true (caps.(i - 1) < caps.(i));
    Alcotest.(check bool) "latency nonincreasing" true (lats.(i) <= lats.(i - 1))
  done;
  Array.iter
    (fun gbs -> Alcotest.(check bool) "usage positive" true (gbs > 0.0))
    (Surface.gb_seconds_curve s)

let test_surface_lookup () =
  let s = surface_of 5 in
  let caps = Surface.caps s in
  let lats = Surface.latencies s in
  check_float "max cap hits last grid point"
    lats.(Array.length lats - 1)
    (Surface.latency_at s (Surface.max_cap s));
  check_float "above the grid clamps to max"
    lats.(Array.length lats - 1)
    (Surface.latency_at s (Surface.max_cap s + 1000));
  Alcotest.(check bool) "below the grid is infeasible" true
    (Surface.latency_at s (Surface.min_cap s - 1) = infinity);
  Alcotest.(check int) "cap_floor rounds down onto the grid" caps.(0)
    (Surface.cap_floor s (caps.(0) + Surface.cap_step s - 1))

let test_surface_preferred_cap () =
  let s = surface_of 5 in
  let best = Array.fold_left min infinity (Surface.latencies s) in
  let p = Surface.preferred_cap s in
  check_float "preferred cap achieves the best latency" best (Surface.latency_at s p);
  if p > Surface.min_cap s then
    Alcotest.(check bool) "no smaller cap does" true
      (Surface.latency_at s (p - Surface.cap_step s) > best)

let test_surface_kernel_matches_scalar () =
  (* The compiled kernel sweep and the scalar sweep must choose identical
     curves — same differential guarantee the oracle enforces. *)
  let k = surface_of ~use_kernel:true 5 and s = surface_of ~use_kernel:false 5 in
  let lk = Surface.latencies k and ls = Surface.latencies s in
  Alcotest.(check int) "same grid" (Array.length lk) (Array.length ls);
  Array.iteri (fun i l -> check_float ~eps:1e-6 "latency agrees" l lk.(i)) ls;
  Array.iteri
    (fun i g -> check_float ~eps:1e-6 "usage agrees" g (Surface.gb_seconds_curve k).(i))
    (Surface.gb_seconds_curve s)

(* ------------------------------------------------------ query validation *)

let test_query_validation () =
  let s = surface_of 5 in
  Alcotest.check_raises "nonpositive weight"
    (Invalid_argument "Allocator.query: weight must be positive") (fun () ->
      ignore (Allocator.query ~weight:0.0 ~name:"w" s));
  Alcotest.check_raises "negative arrival"
    (Invalid_argument "Allocator.query: arrival must be >= 0") (fun () ->
      ignore (Allocator.query ~arrival:(-1.0) ~name:"a" s));
  Alcotest.check_raises "nonpositive slo"
    (Invalid_argument "Allocator.query: slo must be positive") (fun () ->
      ignore (Allocator.query ~slo:0.0 ~name:"s" s));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Allocator.evaluate: allocation arity mismatch") (fun () ->
      ignore (Allocator.evaluate (workload ()) [| 1 |]))

(* -------------------------------------------------------------- frontier *)

let sound_frontier budget (points : Allocator.point list) =
  let rec sorted = function
    | (a : Allocator.point) :: (b :: _ as rest) ->
        a.makespan <= b.makespan && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "frontier sorted by makespan" true (sorted points);
  List.iter
    (fun (p : Allocator.point) ->
      Alcotest.(check bool) "allocation within budget" true
        (Array.fold_left ( + ) 0 p.alloc <= budget))
    points;
  List.iter
    (fun p ->
      Alcotest.(check bool) "mutually non-dominated" true
        (not (List.exists (fun q -> q != p && Allocator.dominates q p) points)))
    points

let test_exact_frontier_sound () =
  let qs = workload () in
  let budget = budget_for qs in
  match Allocator.exact ~budget ~fairness:0.0 qs with
  | None -> Alcotest.fail "exact DP overflowed on a 3-query workload"
  | Some o ->
      Alcotest.(check bool) "ran exact" true (o.mode = Allocator.Exact);
      Alcotest.(check bool) "frontier nonempty" true (o.frontier <> []);
      sound_frontier budget o.frontier;
      Alcotest.(check bool) "frontier covers the equal split" true
        (List.exists (fun p -> Allocator.covers p o.equal_split) o.frontier)

let test_randomized_never_worse_than_equal_split () =
  let qs = workload () in
  let budget = budget_for qs in
  let o = Allocator.randomized ~seed:11 ~budget ~fairness:0.5 qs in
  sound_frontier budget o.frontier;
  match o.frontier with
  | best :: _ ->
      Alcotest.(check bool) "best makespan <= equal split" true
        (best.makespan <= o.equal_split.makespan)
  | [] -> Alcotest.fail "randomized frontier empty"

let test_exact_covers_randomized () =
  (* The differential property check_alloc fuzzes: every point the local
     search reaches is dominated-or-equalled by the exact frontier. *)
  let qs = workload () in
  let budget = budget_for qs in
  let r = Allocator.randomized ~seed:23 ~budget ~fairness:0.0 qs in
  match Allocator.exact ~budget ~fairness:0.0 qs with
  | None -> Alcotest.fail "exact DP overflowed"
  | Some e ->
      List.iter
        (fun rp ->
          Alcotest.(check bool) "exact covers randomized point" true
            (List.exists (fun ep -> Allocator.covers ep rp) e.frontier))
        r.frontier

let test_search_deterministic () =
  let qs = workload () in
  let budget = budget_for qs in
  let run () = Allocator.search ~seed:19 ~budget ~fairness:0.25 qs in
  Alcotest.(check bool) "same seed, same outcome" true (run () = run ());
  let forced = Allocator.search ~want:Allocator.Want_randomized ~seed:19 ~budget ~fairness:0.25 qs in
  Alcotest.(check bool) "forced randomized runs randomized" true
    (forced.mode = Allocator.Randomized)

(* ----------------------------------------------------- fairness + pricing *)

let test_fairness_floors () =
  let qs = workload () in
  let budget = budget_for qs in
  let zero = Allocator.floors ~budget ~fairness:0.0 qs in
  Array.iteri
    (fun i f ->
      Alcotest.(check int) "fairness 0 floors at the grid minimum"
        (Surface.min_cap qs.(i).Allocator.surface) f)
    zero;
  let full = Allocator.floors ~budget ~fairness:1.0 qs in
  Alcotest.(check bool) "full fairness still fits the budget" true
    (Array.fold_left ( + ) 0 full <= budget);
  Alcotest.(check bool) "heavier tenants get higher floors" true
    (full.(1) >= full.(0));
  Alcotest.check_raises "infeasible floors rejected"
    (Invalid_argument "Allocator: budget below the minimum per-query allocations")
    (fun () ->
      ignore (Allocator.floors ~budget:(min_budget_for qs - 1) ~fairness:0.0 qs))

let test_spot_pricing_scales_dollars () =
  let qs = workload () in
  let alloc = Array.map (fun (q : Allocator.query) -> Surface.min_cap q.surface) qs in
  let flat = Allocator.evaluate qs alloc in
  let doubled =
    Allocator.evaluate ~pricing:(Pricing.spot ~swings:[ (0.0, 2.0) ] Pricing.default) qs alloc
  in
  check_float ~eps:1e-9 "doubling the spot rate doubles dollars" (2.0 *. flat.dollars)
    doubled.dollars;
  check_float "makespan is pricing-independent" flat.makespan doubled.makespan;
  Alcotest.(check int) "violations are pricing-independent" flat.violations
    doubled.violations

let test_hypervolume () =
  let pt makespan dollars = { Allocator.alloc = [||]; makespan; dollars; violations = 0 } in
  check_float "single-point rectangle" 6.0
    (Allocator.hypervolume ~ref_makespan:4.0 ~ref_dollars:5.0 [ pt 2.0 2.0 ]);
  check_float "point at the reference corner contributes nothing" 0.0
    (Allocator.hypervolume ~ref_makespan:4.0 ~ref_dollars:5.0 [ pt 4.0 5.0 ]);
  let lone = Allocator.hypervolume ~ref_makespan:4.0 ~ref_dollars:5.0 [ pt 2.0 2.0 ] in
  let both = Allocator.hypervolume ~ref_makespan:4.0 ~ref_dollars:5.0 [ pt 2.0 2.0; pt 3.0 1.0 ] in
  Alcotest.(check bool) "adding a non-dominated point grows the volume" true (both > lone)

(* ------------------------------------------------------------- workloads *)

let test_workload_arrivals () =
  let draw seed = Workload.arrivals (Rng.create seed) ~n:6 ~rate:0.01 ~capacity:12 in
  let a = draw 3 in
  Alcotest.(check int) "count" 6 (Array.length a);
  Array.iteri
    (fun i t ->
      Alcotest.(check bool) "nonnegative" true (t >= 0.0);
      if i > 0 then Alcotest.(check bool) "ascending" true (a.(i - 1) <= t))
    a;
  Alcotest.(check bool) "deterministic" true (draw 3 = draw 3)

let test_oracle_alloc_arm_clean () =
  let inst = Oracle.instance 13 in
  Alcotest.(check string) "check_alloc reports no violations" ""
    (Raqo_verify.Diagnostic.render (Oracle.check_alloc inst))

let () =
  Alcotest.run "raqo_alloc"
    [
      ( "surface",
        [
          Alcotest.test_case "monotone curves" `Quick test_surface_monotone;
          Alcotest.test_case "grid lookup" `Quick test_surface_lookup;
          Alcotest.test_case "preferred cap" `Quick test_surface_preferred_cap;
          Alcotest.test_case "kernel sweep matches scalar" `Quick
            test_surface_kernel_matches_scalar;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "rejects bad queries" `Quick test_query_validation;
          Alcotest.test_case "exact frontier is sound" `Quick test_exact_frontier_sound;
          Alcotest.test_case "randomized never worse than equal split" `Quick
            test_randomized_never_worse_than_equal_split;
          Alcotest.test_case "exact covers randomized" `Quick test_exact_covers_randomized;
          Alcotest.test_case "search deterministic" `Quick test_search_deterministic;
          Alcotest.test_case "fairness floors" `Quick test_fairness_floors;
          Alcotest.test_case "spot pricing scales dollars" `Quick
            test_spot_pricing_scales_dollars;
          Alcotest.test_case "hypervolume" `Quick test_hypervolume;
        ] );
      ( "workload",
        [
          Alcotest.test_case "heavy-tailed arrivals" `Quick test_workload_arrivals;
          Alcotest.test_case "differential oracle arm clean" `Quick
            test_oracle_alloc_arm_clean;
        ] );
    ]
