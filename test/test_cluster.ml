(* Tests for Raqo_cluster: resource configurations, cluster conditions,
   pricing, and the multi-tenant queue simulator behind Figure 1. *)

module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions
module Pricing = Raqo_cluster.Pricing
module Queue_sim = Raqo_cluster.Queue_sim
module Rng = Raqo_util.Rng
module Stats = Raqo_util.Stats

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------ Resources *)

let test_resources_totals () =
  let r = Resources.make ~containers:10 ~container_gb:3.0 in
  check_float "total" 30.0 (Resources.total_gb r);
  check_float "gb_seconds" 300.0 (Resources.gb_seconds r 10.0);
  check_float "tb_seconds" (300.0 /. 1024.0) (Resources.tb_seconds r 10.0)

let test_resources_rejects_bad () =
  Alcotest.check_raises "containers"
    (Invalid_argument "Resources.make: containers must be positive") (fun () ->
      ignore (Resources.make ~containers:0 ~container_gb:1.0));
  Alcotest.check_raises "memory"
    (Invalid_argument "Resources.make: container_gb must be positive") (fun () ->
      ignore (Resources.make ~containers:1 ~container_gb:0.0))

let test_resources_equal () =
  let a = Resources.make ~containers:2 ~container_gb:4.0 in
  let b = Resources.make ~containers:2 ~container_gb:4.0 in
  let c = Resources.make ~containers:3 ~container_gb:4.0 in
  Alcotest.(check bool) "equal" true (Resources.equal a b);
  Alcotest.(check bool) "not equal" false (Resources.equal a c)

(* ----------------------------------------------------------- Conditions *)

let test_conditions_default_space () =
  (* Paper: 100 containers x 10 GB in steps of 1 => 1000 configurations. *)
  Alcotest.(check int) "1000 configs" 1000 (Conditions.n_configs Conditions.default)

let test_conditions_all_configs_complete () =
  let c = Conditions.make ~max_containers:3 ~max_gb:2.0 () in
  let configs = Conditions.all_configs c in
  Alcotest.(check int) "3x2" 6 (List.length configs);
  Alcotest.(check bool) "all within" true (List.for_all (Conditions.contains c) configs)

let test_conditions_contains_grid_only () =
  let c = Conditions.make ~max_containers:10 ~max_gb:10.0 ~gb_step:2.0 ~min_gb:1.0 () in
  Alcotest.(check bool) "on grid" true
    (Conditions.contains c (Resources.make ~containers:5 ~container_gb:3.0));
  Alcotest.(check bool) "off grid" false
    (Conditions.contains c (Resources.make ~containers:5 ~container_gb:4.0));
  Alcotest.(check bool) "out of bounds" false
    (Conditions.contains c (Resources.make ~containers:11 ~container_gb:3.0))

let test_conditions_clamp () =
  let c = Conditions.default in
  let r = Conditions.clamp c (Resources.make ~containers:5000 ~container_gb:0.5) in
  Alcotest.(check int) "containers clamped" 100 r.Resources.containers;
  check_float "memory clamped" 1.0 r.Resources.container_gb

let test_conditions_min_max () =
  let c = Conditions.default in
  Alcotest.(check int) "min containers" 1 (Conditions.min_config c).Resources.containers;
  Alcotest.(check int) "max containers" 100 (Conditions.max_config c).Resources.containers

let test_conditions_scale_capacity () =
  let c = Conditions.scale_capacity Conditions.default ~containers:100_000 ~gb:100.0 in
  Alcotest.(check int) "containers" 100_000 c.Conditions.max_containers;
  check_float "memory" 100.0 c.Conditions.max_gb

let test_conditions_rejects_bad () =
  Alcotest.check_raises "bounds" (Invalid_argument "Conditions.make: bad container bounds")
    (fun () -> ignore (Conditions.make ~min_containers:10 ~max_containers:5 ()))

let prop_clamp_idempotent =
  QCheck.Test.make ~name:"clamp is idempotent and lands in bounds" ~count:100
    QCheck.(pair (int_range 1 5000) (float_range 0.1 500.0))
    (fun (containers, container_gb) ->
      let c = Conditions.default in
      let r = Resources.make ~containers ~container_gb in
      let once = Conditions.clamp c r in
      let twice = Conditions.clamp c once in
      Resources.equal once twice
      && once.Resources.containers >= c.Conditions.min_containers
      && once.Resources.containers <= c.Conditions.max_containers
      && once.Resources.container_gb >= c.Conditions.min_gb -. 1e-9
      && once.Resources.container_gb <= c.Conditions.max_gb +. 1e-9)

let prop_all_configs_within_bounds =
  QCheck.Test.make ~name:"every enumerated config is contained" ~count:30
    QCheck.(pair (int_range 1 15) (int_range 1 6))
    (fun (max_containers, max_gb) ->
      let c = Conditions.make ~max_containers ~max_gb:(float_of_int max_gb) () in
      List.for_all (Conditions.contains c) (Conditions.all_configs c))

let prop_all_configs_count_matches =
  QCheck.Test.make ~name:"all_configs length = n_configs" ~count:50
    QCheck.(pair (int_range 1 20) (int_range 1 8))
    (fun (max_containers, max_gb) ->
      let c = Conditions.make ~max_containers ~max_gb:(float_of_int max_gb) () in
      List.length (Conditions.all_configs c) = Conditions.n_configs c)

(* -------------------------------------------------------------- Pricing *)

let test_pricing_linear_in_time_and_memory () =
  let p = Pricing.default in
  let r = Resources.make ~containers:10 ~container_gb:4.0 in
  let c1 = Pricing.run_cost p ~resources:r ~seconds:100.0 in
  let c2 = Pricing.run_cost p ~resources:r ~seconds:200.0 in
  check_float "linear in time" (2.0 *. c1) c2;
  let r2 = Resources.make ~containers:20 ~container_gb:4.0 in
  check_float "linear in memory" (2.0 *. c1) (Pricing.run_cost p ~resources:r2 ~seconds:100.0)

let test_pricing_gb_seconds () =
  let p = { Pricing.dollars_per_gb_hour = 3.6 } in
  check_float "1 GB for 1000s at 3.6/h" 1.0 (Pricing.gb_seconds_cost p 1000.0)

(* ------------------------------------------------- Pricing spot schedules *)

let test_pricing_flat_never_swings () =
  let s = Pricing.flat Pricing.default in
  check_float "multiplier everywhere 1" 1.0 (Pricing.multiplier_at s 12345.6);
  check_float "spot equals base"
    (Pricing.gb_seconds_cost Pricing.default 500.0)
    (Pricing.spot_cost s ~gb_seconds:500.0 ~start:3.0 ~finish:73.0)

let test_pricing_spot_zero_duration () =
  (* A zero-duration job averages to the instantaneous rate — and segments
     are closed on the left, so at the swing instant the new rate is
     already in force. *)
  let s = Pricing.spot ~swings:[ (10.0, 2.0) ] Pricing.default in
  check_float "before the swing" 1.0 (Pricing.average_multiplier s ~start:5.0 ~finish:5.0);
  check_float "exactly at the swing" 2.0
    (Pricing.average_multiplier s ~start:10.0 ~finish:10.0);
  check_float "after the swing" 2.0
    (Pricing.average_multiplier s ~start:11.0 ~finish:11.0);
  check_float "zero-duration cost still prices usage"
    (2.0 *. Pricing.gb_seconds_cost Pricing.default 100.0)
    (Pricing.spot_cost s ~gb_seconds:100.0 ~start:10.0 ~finish:10.0)

let test_pricing_spot_step_at_boundary () =
  (* A price step landing exactly on a stage boundary: the window ending at
     the step never sees the new rate (zero measure), the window starting
     there is entirely post-step. *)
  let s = Pricing.spot ~swings:[ (10.0, 2.0) ] Pricing.default in
  check_float "window ending at the step" 1.0
    (Pricing.average_multiplier s ~start:0.0 ~finish:10.0);
  check_float "window starting at the step" 2.0
    (Pricing.average_multiplier s ~start:10.0 ~finish:20.0);
  check_float "window straddling the step" 1.5
    (Pricing.average_multiplier s ~start:5.0 ~finish:15.0)

let test_pricing_spot_multi_segment_integral () =
  let s = Pricing.spot ~swings:[ (10.0, 2.0); (20.0, 0.5) ] Pricing.default in
  (* [0,30] = 10s at 1.0 + 10s at 2.0 + 10s at 0.5. *)
  check_float "piecewise integral" (35.0 /. 30.0)
    (Pricing.average_multiplier s ~start:0.0 ~finish:30.0);
  check_float "tail segment extends forever" 0.5
    (Pricing.average_multiplier s ~start:40.0 ~finish:90.0)

let test_pricing_spot_validation () =
  Alcotest.check_raises "nonpositive multiplier"
    (Invalid_argument "Pricing.spot: multiplier must be positive") (fun () ->
      ignore (Pricing.spot ~swings:[ (1.0, 0.0) ] Pricing.default));
  Alcotest.check_raises "negative swing time"
    (Invalid_argument "Pricing.spot: swing time must be >= 0") (fun () ->
      ignore (Pricing.spot ~swings:[ (-1.0, 2.0) ] Pricing.default));
  Alcotest.check_raises "unordered swings"
    (Invalid_argument "Pricing.spot: swing times must be strictly increasing") (fun () ->
      ignore (Pricing.spot ~swings:[ (5.0, 2.0); (5.0, 0.5) ] Pricing.default));
  Alcotest.check_raises "backwards window"
    (Invalid_argument "Pricing.average_multiplier: finish < start") (fun () ->
      ignore
        (Pricing.average_multiplier (Pricing.flat Pricing.default) ~start:2.0
           ~finish:1.0))

let test_pricing_random_swings_deterministic () =
  let draw seed = Pricing.random_swings (Rng.create seed) ~horizon:1000.0 ~segments:4 in
  Alcotest.(check bool) "same seed, same swings" true (draw 7 = draw 7);
  Alcotest.(check bool) "different seed, different swings" true (draw 7 <> draw 8);
  List.iter
    (fun (at, m) ->
      Alcotest.(check bool) "time in horizon" true (at >= 0.0 && at <= 1000.0);
      Alcotest.(check bool) "multiplier in [0.5,2)" true (m >= 0.5 && m < 2.0))
    (draw 7);
  (* And the schedule they build is valid (strictly increasing times). *)
  ignore (Pricing.spot ~swings:(draw 7) Pricing.default)

(* ------------------------------------------------------------ Queue_sim *)

let test_queue_empty_cluster_no_wait () =
  (* A single job on an idle cluster starts immediately. *)
  let jobs = [ { Queue_sim.arrival = 5.0; demand = 10; runtime = 100.0 } ] in
  match Queue_sim.run ~capacity:100 jobs with
  | [ o ] ->
      check_float "starts at arrival" 5.0 o.Queue_sim.start;
      check_float "no queueing" 0.0 o.Queue_sim.queue_time
  | _ -> Alcotest.fail "expected one outcome"

let test_queue_serializes_when_full () =
  (* Two jobs each demanding the whole cluster run back to back. *)
  let jobs =
    [
      { Queue_sim.arrival = 0.0; demand = 10; runtime = 50.0 };
      { Queue_sim.arrival = 1.0; demand = 10; runtime = 50.0 };
    ]
  in
  (match Queue_sim.run ~capacity:10 jobs with
  | [ o1; o2 ] ->
      check_float "first immediate" 0.0 o1.Queue_sim.queue_time;
      check_float "second waits for first" 50.0 o2.Queue_sim.start;
      check_float "second queue time" 49.0 o2.Queue_sim.queue_time
  | _ -> Alcotest.fail "expected two outcomes")

let test_queue_parallel_when_fits () =
  let jobs =
    [
      { Queue_sim.arrival = 0.0; demand = 4; runtime = 50.0 };
      { Queue_sim.arrival = 1.0; demand = 4; runtime = 50.0 };
    ]
  in
  match Queue_sim.run ~capacity:10 jobs with
  | [ _; o2 ] -> check_float "no wait" 0.0 o2.Queue_sim.queue_time
  | _ -> Alcotest.fail "expected two outcomes"

let test_queue_fifo_order () =
  (* A small job behind a big one still waits (FIFO, no backfilling). *)
  let jobs =
    [
      { Queue_sim.arrival = 0.0; demand = 10; runtime = 100.0 };
      { Queue_sim.arrival = 1.0; demand = 10; runtime = 1.0 };
      { Queue_sim.arrival = 2.0; demand = 1; runtime = 1.0 };
    ]
  in
  match Queue_sim.run ~capacity:10 jobs with
  | [ _; o2; o3 ] ->
      check_float "second starts when first ends" 100.0 o2.Queue_sim.start;
      Alcotest.(check bool) "third not before second" true
        (o3.Queue_sim.start >= o2.Queue_sim.start)
  | _ -> Alcotest.fail "expected three outcomes"

let test_queue_rejects_oversized_demand () =
  Alcotest.check_raises "demand" (Invalid_argument "Queue_sim.run: demand exceeds capacity")
    (fun () ->
      ignore
        (Queue_sim.run ~capacity:5
           [ { Queue_sim.arrival = 0.0; demand = 6; runtime = 1.0 } ]))

let test_queue_generate_bounds () =
  let rng = Rng.create 3 in
  let jobs = Queue_sim.generate rng Queue_sim.default_workload ~capacity:50 in
  Alcotest.(check int) "job count" Queue_sim.default_workload.Queue_sim.jobs
    (List.length jobs);
  List.iter
    (fun (j : Queue_sim.job) ->
      Alcotest.(check bool) "demand feasible" true (j.demand >= 1 && j.demand <= 50);
      Alcotest.(check bool) "runtime positive" true (j.runtime > 0.0))
    jobs;
  let arrivals = List.map (fun (j : Queue_sim.job) -> j.arrival) jobs in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "arrivals ordered" true (nondecreasing arrivals)

let test_queue_generate_deterministic () =
  (* Heavy-tailed arrival generation is a pure function of the seed: two
     generators with the same seed yield bit-identical job lists, so the
     allocator's scenario sweeps are reproducible. *)
  let draw seed =
    Queue_sim.generate (Rng.create seed) Queue_sim.default_workload ~capacity:40
  in
  Alcotest.(check bool) "same seed, same jobs" true (draw 17 = draw 17);
  Alcotest.(check bool) "different seed, different jobs" true (draw 17 <> draw 18)

let test_queue_contended_cluster_matches_fig1_shape () =
  (* Figure 1's headline: on a busy cluster, >80% of jobs wait at least as
     long as they run, and >20% wait at least 4x. *)
  let rng = Rng.create 1 in
  let jobs = Queue_sim.generate rng Queue_sim.default_workload ~capacity:60 in
  let ratios = Queue_sim.ratios (Queue_sim.run ~capacity:60 jobs) in
  let frac1 = Stats.fraction_at_least ratios 1.0 in
  let frac4 = Stats.fraction_at_least ratios 4.0 in
  Alcotest.(check bool)
    (Printf.sprintf "most jobs wait >= runtime (got %.2f)" frac1)
    true (frac1 > 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "heavy tail of 4x waiters (got %.2f)" frac4)
    true (frac4 > 0.1)

let prop_queue_never_starts_before_arrival =
  QCheck.Test.make ~name:"jobs never start before arrival" ~count:30
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let w = { Queue_sim.default_workload with Queue_sim.jobs = 200 } in
      let jobs = Queue_sim.generate rng w ~capacity:30 in
      let outcomes = Queue_sim.run ~capacity:30 jobs in
      List.for_all
        (fun (o : Queue_sim.outcome) -> o.start >= o.job.Queue_sim.arrival -. 1e-9)
        outcomes)

let prop_queue_capacity_never_exceeded =
  QCheck.Test.make ~name:"concurrent demand never exceeds capacity" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let w = { Queue_sim.default_workload with Queue_sim.jobs = 150 } in
      let capacity = 25 in
      let jobs = Queue_sim.generate rng w ~capacity in
      let outcomes = Queue_sim.run ~capacity jobs in
      (* Check usage at every start instant. *)
      List.for_all
        (fun (o : Queue_sim.outcome) ->
          let t = o.start in
          let used =
            List.fold_left
              (fun acc (p : Queue_sim.outcome) ->
                if p.start <= t && t < p.start +. p.job.Queue_sim.runtime then
                  acc + p.job.Queue_sim.demand
                else acc)
              0 outcomes
          in
          used <= capacity)
        outcomes)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_cluster"
    [
      ( "resources",
        [
          Alcotest.test_case "totals" `Quick test_resources_totals;
          Alcotest.test_case "rejects bad inputs" `Quick test_resources_rejects_bad;
          Alcotest.test_case "equality" `Quick test_resources_equal;
        ] );
      ( "conditions",
        [
          Alcotest.test_case "paper default space is 1000" `Quick test_conditions_default_space;
          Alcotest.test_case "all_configs enumerates the grid" `Quick
            test_conditions_all_configs_complete;
          Alcotest.test_case "contains respects the grid" `Quick
            test_conditions_contains_grid_only;
          Alcotest.test_case "clamp" `Quick test_conditions_clamp;
          Alcotest.test_case "min/max configs" `Quick test_conditions_min_max;
          Alcotest.test_case "scale_capacity (Fig 15b)" `Quick test_conditions_scale_capacity;
          Alcotest.test_case "rejects bad bounds" `Quick test_conditions_rejects_bad;
        ]
        @ qsuite
            [ prop_all_configs_count_matches; prop_clamp_idempotent; prop_all_configs_within_bounds ]
      );
      ( "pricing",
        [
          Alcotest.test_case "linear in time and memory" `Quick
            test_pricing_linear_in_time_and_memory;
          Alcotest.test_case "gb_seconds pricing" `Quick test_pricing_gb_seconds;
          Alcotest.test_case "flat schedule never swings" `Quick
            test_pricing_flat_never_swings;
          Alcotest.test_case "spot: zero-duration window" `Quick
            test_pricing_spot_zero_duration;
          Alcotest.test_case "spot: step exactly at stage boundary" `Quick
            test_pricing_spot_step_at_boundary;
          Alcotest.test_case "spot: multi-segment integral" `Quick
            test_pricing_spot_multi_segment_integral;
          Alcotest.test_case "spot: rejects bad swings" `Quick test_pricing_spot_validation;
          Alcotest.test_case "random swings deterministic and bounded" `Quick
            test_pricing_random_swings_deterministic;
        ] );
      ( "queue_sim",
        [
          Alcotest.test_case "idle cluster: no wait" `Quick test_queue_empty_cluster_no_wait;
          Alcotest.test_case "full cluster serializes" `Quick test_queue_serializes_when_full;
          Alcotest.test_case "parallel when capacity fits" `Quick test_queue_parallel_when_fits;
          Alcotest.test_case "FIFO ordering" `Quick test_queue_fifo_order;
          Alcotest.test_case "rejects infeasible demand" `Quick
            test_queue_rejects_oversized_demand;
          Alcotest.test_case "generated workload bounds" `Quick test_queue_generate_bounds;
          Alcotest.test_case "generation deterministic under fixed seed" `Quick
            test_queue_generate_deterministic;
          Alcotest.test_case "contended cluster reproduces Fig 1 shape" `Quick
            test_queue_contended_cluster_matches_fig1_shape;
        ]
        @ qsuite [ prop_queue_never_starts_before_arrival; prop_queue_capacity_never_exceeded ]
      );
    ]
