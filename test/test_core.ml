(* Integration tests for the core RAQO library: decision trees, rule-based
   and cost-based RAQO, the four use cases, adaptive re-optimization, explain
   output, trained models — plus end-to-end properties tying the optimizer
   to the execution simulator. *)

module Join_dt = Raqo.Join_dt
module Rule_based = Raqo.Rule_based
module Cost_based = Raqo.Cost_based
module Use_cases = Raqo.Use_cases
module Adaptive = Raqo.Adaptive
module Explain = Raqo.Explain
module Models = Raqo.Models
module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions
module Schema = Raqo_catalog.Schema
module Tpch = Raqo_catalog.Tpch
module Engine = Raqo_execsim.Engine
module Simulate = Raqo_execsim.Simulate
module Counters = Raqo_resource.Counters

let schema = Tpch.schema ()
let hive = Engine.hive
let res nc gb = Resources.make ~containers:nc ~container_gb:gb
let model = Models.hive ()
let make_opt ?kind ?resource_strategy ?cache ?lookup () =
  Cost_based.create ?kind ?resource_strategy ?cache ?lookup ~model
    ~conditions:Conditions.default schema

(* -------------------------------------------------------------- Join_dt *)

let test_default_tree_is_stock_rule () =
  let t = Join_dt.default_tree hive in
  Alcotest.(check bool) "tiny -> BHJ" true
    (Join_impl.equal (Join_dt.choose t ~small_gb:0.005 ~resources:(res 10 3.0)) Join_impl.Bhj);
  Alcotest.(check bool) "large -> SMJ" true
    (Join_impl.equal (Join_dt.choose t ~small_gb:5.0 ~resources:(res 10 10.0)) Join_impl.Smj)

let test_default_tree_ignores_resources () =
  let t = Join_dt.default_tree hive in
  let a = Join_dt.choose t ~small_gb:2.0 ~resources:(res 1 1.0) in
  let b = Join_dt.choose t ~small_gb:2.0 ~resources:(res 100 10.0) in
  Alcotest.(check bool) "resource-blind" true (Join_impl.equal a b)

let trained_tree = lazy (Join_dt.train hive ~big_gb:77.0)

let test_raqo_tree_is_resource_aware () =
  let t = Lazy.force trained_tree in
  (* 5.1 GB build side: BHJ in big containers, SMJ at high parallelism with
     small containers (Section III's headline finding). *)
  Alcotest.(check bool) "BHJ at 10x10GB" true
    (Join_impl.equal (Join_dt.choose t ~small_gb:5.1 ~resources:(res 10 10.0)) Join_impl.Bhj);
  Alcotest.(check bool) "SMJ at 40x3GB" true
    (Join_impl.equal (Join_dt.choose t ~small_gb:5.1 ~resources:(res 40 3.0)) Join_impl.Smj)

let test_raqo_tree_accuracy () =
  let t = Lazy.force trained_tree in
  let small_sizes, configs = Join_dt.training_grid hive ~big_gb:77.0 in
  let d =
    Raqo_workload.Profile_runs.classification_dataset hive ~big_gb:77.0 ~small_sizes ~configs
  in
  let acc = Raqo_dtree.Cart.accuracy t d in
  Alcotest.(check bool) (Printf.sprintf "training accuracy %.3f > 0.98" acc) true (acc > 0.98)

let test_raqo_tree_deeper_than_default () =
  (* Figure 11 vs Figure 10: the RAQO tree branches on resources too. *)
  let t = Lazy.force trained_tree in
  Alcotest.(check bool) "deeper" true
    (Raqo_dtree.Tree.depth t > Raqo_dtree.Tree.depth (Join_dt.default_tree hive));
  (* The paper reports maximum path length 6 for Hive; pruned CART on our
     grid stays in the same ballpark. *)
  Alcotest.(check bool) "not degenerate" true (Raqo_dtree.Tree.depth t < 30)

let test_tree_render_has_feature_names () =
  let s = Join_dt.render (Lazy.force trained_tree) in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions data_gb" true (contains "data_gb");
  Alcotest.(check bool) "mentions a resource feature" true
    (contains "container_gb" || contains "containers")

let test_impl_label_roundtrip () =
  List.iter
    (fun impl ->
      Alcotest.(check bool) "roundtrip" true
        (Join_impl.equal impl (Join_dt.impl_of_label (Join_dt.label_of_impl impl))))
    Join_impl.all

(* ----------------------------------------------------------- Rule_based *)

let test_rule_based_flips_with_resources () =
  let t = Lazy.force trained_tree in
  let plan_at r = Rule_based.plan t schema ~resources:r Tpch.q12 in
  let impl_at r =
    match Join_tree.annotations (plan_at r) with
    | [ impl ] -> impl
    | _ -> Alcotest.fail "one join"
  in
  (* orders (16.5 GB) never broadcasts; shrink orders to the paper's 5.1 GB
     sample to see the flip. *)
  ignore (impl_at (res 10 10.0));
  let sampled =
    Schema.with_relation schema
      (Raqo_catalog.Relation.scale (Schema.find schema "orders") (5.1 /. 16.48))
  in
  let impl_small r =
    match Join_tree.annotations (Rule_based.plan t sampled ~resources:r Tpch.q12) with
    | [ impl ] -> impl
    | _ -> Alcotest.fail "one join"
  in
  Alcotest.(check bool) "BHJ at big containers" true
    (Join_impl.equal (impl_small (res 10 10.0)) Join_impl.Bhj);
  Alcotest.(check bool) "SMJ at high parallelism" true
    (Join_impl.equal (impl_small (res 40 3.0)) Join_impl.Smj)

let test_rule_based_default_plan_matches_heuristic () =
  let a = Rule_based.default_plan hive schema ~resources:(res 10 3.0) Tpch.q3 in
  let b = Raqo_planner.Heuristics.default_plan hive schema Tpch.q3 in
  Alcotest.(check bool) "same plan" true (Join_tree.equal_shape Join_impl.equal a b)

let test_rule_based_valid_plans () =
  let t = Lazy.force trained_tree in
  let plan = Rule_based.plan t schema ~resources:(res 20 5.0) Tpch.all in
  Alcotest.(check bool) "valid" true (Join_tree.valid plan);
  Alcotest.(check int) "all relations" 8 (List.length (Join_tree.relations plan))

(* ----------------------------------------------------------- Cost_based *)

let test_cost_based_selinger_all_queries () =
  let opt = make_opt () in
  List.iter
    (fun (name, rels) ->
      Cost_based.reset opt;
      match Cost_based.optimize opt rels with
      | Some (plan, cost) ->
          Alcotest.(check bool) (name ^ " valid") true (Join_tree.valid plan);
          Alcotest.(check bool) (name ^ " finite") true (Float.is_finite cost);
          Alcotest.(check bool) (name ^ " positive") true (cost > 0.0);
          (* Resources must come from the cluster conditions. *)
          List.iter
            (fun (_, r) ->
              Alcotest.(check bool) (name ^ " resources on grid") true
                (Conditions.contains Conditions.default r))
            (Join_tree.annotations plan)
      | None -> Alcotest.failf "%s: no plan" name)
    Tpch.evaluation_queries

let test_cost_based_bushy_dp () =
  let opt = make_opt ~kind:Cost_based.Bushy_dp () in
  let ld = make_opt ~kind:Cost_based.Selinger () in
  match (Cost_based.optimize opt Tpch.all, Cost_based.optimize ld Tpch.all) with
  | Some (plan, bushy), Some (_, left_deep) ->
      Alcotest.(check bool) "valid" true (Join_tree.valid plan);
      Alcotest.(check bool) "bushy <= left-deep" true (bushy <= left_deep +. 1e-6)
  | _ -> Alcotest.fail "plans expected"

let test_cost_based_fast_randomized () =
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  match Cost_based.optimize opt Tpch.all with
  | Some (plan, cost) ->
      Alcotest.(check bool) "valid" true (Join_tree.valid plan);
      Alcotest.(check bool) "finite" true (Float.is_finite cost)
  | None -> Alcotest.fail "plan expected"

let test_cost_based_qo_baseline_fixed_resources () =
  let opt = make_opt () in
  let r = res 10 5.0 in
  match Cost_based.optimize_qo opt ~resources:r Tpch.q3 with
  | Some (plan, _) ->
      List.iter
        (fun (_, pr) -> Alcotest.(check bool) "fixed" true (Resources.equal pr r))
        (Join_tree.annotations plan)
  | None -> Alcotest.fail "plan expected"

let test_cost_based_raqo_not_worse_than_qo () =
  (* Under the same cost model, joint optimization over all resource
     configurations can never lose to any fixed-resource baseline. *)
  let opt = make_opt ~resource_strategy:Raqo_resource.Resource_planner.Brute_force () in
  List.iter
    (fun (name, rels) ->
      Cost_based.reset opt;
      let joint =
        match Cost_based.optimize opt rels with
        | Some (_, c) -> c
        | None -> Alcotest.failf "%s: no joint plan" name
      in
      List.iter
        (fun r ->
          match Cost_based.optimize_qo opt ~resources:r rels with
          | Some (_, fixed) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: joint %.2f <= fixed %.2f" name joint fixed)
                true
                (joint <= fixed +. 1e-6)
          | None -> ())
        [ res 10 3.0; res 10 10.0; res 100 10.0; res 1 1.0 ])
    [ ("Q12", Tpch.q12); ("Q3", Tpch.q3) ]

let test_hill_climb_fewer_evals_than_brute_force () =
  let bf = make_opt ~resource_strategy:Raqo_resource.Resource_planner.Brute_force ~cache:false () in
  let hc = make_opt ~cache:false () in
  ignore (Cost_based.optimize bf Tpch.all);
  ignore (Cost_based.optimize hc Tpch.all);
  let eb = Counters.cost_evaluations (Cost_based.counters bf) in
  let eh = Counters.cost_evaluations (Cost_based.counters hc) in
  Alcotest.(check bool)
    (Printf.sprintf "HC %d at least 2x below BF %d" eh eb)
    true
    (eh * 2 < eb)

let test_cache_reduces_evals_further () =
  let nocache = make_opt ~cache:false () in
  let cached = make_opt ~cache:true () in
  ignore (Cost_based.optimize nocache Tpch.all);
  ignore (Cost_based.optimize cached Tpch.all);
  let e1 = Counters.cost_evaluations (Cost_based.counters nocache) in
  let e2 = Counters.cost_evaluations (Cost_based.counters cached) in
  Alcotest.(check bool) (Printf.sprintf "cached %d < uncached %d" e2 e1) true (e2 < e1);
  Alcotest.(check bool) "hits recorded" true
    (Counters.cache_hits (Cost_based.counters cached) > 0)

let test_hill_climb_matches_brute_force_on_trained_model () =
  (* The trained model's per-join cost surfaces are benign enough that hill
     climbing finds the global optimum (observed and pinned here). *)
  let bf = make_opt ~resource_strategy:Raqo_resource.Resource_planner.Brute_force ~cache:false () in
  let hc = make_opt ~cache:false () in
  match (Cost_based.optimize bf Tpch.q3, Cost_based.optimize hc Tpch.q3) with
  | Some (_, cb), Some (_, ch) -> Alcotest.(check (float 1e-6)) "same cost" cb ch
  | _ -> Alcotest.fail "plans expected"

let test_with_conditions_changes_bounds () =
  let opt = make_opt () in
  let tight = Conditions.make ~max_containers:5 ~max_gb:2.0 () in
  let opt2 = Cost_based.with_conditions opt tight in
  match Cost_based.optimize opt2 Tpch.q12 with
  | Some (plan, _) ->
      List.iter
        (fun (_, r) ->
          Alcotest.(check bool) "within tight bounds" true (Conditions.contains tight r))
        (Join_tree.annotations plan)
  | None -> Alcotest.fail "plan expected"

let test_candidates_nonempty () =
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  let cands = Cost_based.candidates opt Tpch.q3 in
  Alcotest.(check bool) "several candidates" true (List.length cands >= 2)

let test_kernel_toggle_is_invisible () =
  (* Compiled kernels are a pure perf lever: a kernel-on optimizer and its
     --no-kernel twin emit identical joint plans, costs, and instrumentation.
     On the paper-space model the kernels actually engage; on the
     extended-space hive model Kernel.make refuses and both sides run the
     scalar fallback — the flag must be invisible either way. *)
  let models =
    [
      ("paper", Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper);
      ("extended hive", Models.hive ());
    ]
  in
  let strategies =
    [
      ("hill climb", Raqo_resource.Resource_planner.Hill_climb, false);
      ("brute force", Raqo_resource.Resource_planner.Brute_force, false);
      ("pruned brute force", Raqo_resource.Resource_planner.Brute_force, true);
    ]
  in
  List.iter
    (fun (mname, model) ->
      List.iter
        (fun (sname, strategy, pruned) ->
          let run kernel =
            let opt =
              Cost_based.create ~resource_strategy:strategy ~pruned ~cache:false ~kernel
                ~model ~conditions:Conditions.default schema
            in
            let result = Cost_based.optimize opt Tpch.q5 in
            let k = Cost_based.counters opt in
            (result, Counters.cost_evaluations k, Counters.planner_invocations k)
          in
          let label = mname ^ "/" ^ sname in
          Alcotest.(check bool) (label ^ ": kernel toggle invisible") true
            (run true = run false))
        strategies)
    models

(* ------------------------------------------------------------ Use_cases *)

let test_use_case_r_to_p () =
  let opt = make_opt () in
  match Use_cases.plan_for_resources opt ~resources:(res 10 5.0) Tpch.q3 with
  | Some p ->
      Alcotest.(check bool) "priced" true (p.Use_cases.est_money > 0.0);
      Alcotest.(check bool) "costed" true (p.Use_cases.est_cost > 0.0)
  | None -> Alcotest.fail "plan expected"

let test_use_case_p_to_r () =
  let opt = make_opt () in
  let shape = Raqo_planner.Heuristics.greedy_left_deep schema Tpch.q3 in
  match Use_cases.resources_for_plan opt shape with
  | Some p ->
      (* Shape preserved: same relations bottom-up. *)
      Alcotest.(check (list string)) "same join order"
        (Join_tree.relations shape)
        (Join_tree.relations p.Use_cases.plan)
  | None -> Alcotest.fail "plan expected"

let test_use_case_joint_beats_fixed () =
  let opt = make_opt ~resource_strategy:Raqo_resource.Resource_planner.Brute_force () in
  match
    ( Use_cases.best_joint opt Tpch.q12,
      Use_cases.plan_for_resources opt ~resources:(res 10 3.0) Tpch.q12 )
  with
  | Some joint, Some fixed ->
      Alcotest.(check bool) "joint cost <= fixed cost" true
        (joint.Use_cases.est_cost <= fixed.Use_cases.est_cost +. 1e-6)
  | _ -> Alcotest.fail "plans expected"

let test_use_case_c_to_pr_budget_respected () =
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  (* First learn what plans cost, then set a budget between min and max. *)
  match Use_cases.best_joint opt Tpch.q3 with
  | None -> Alcotest.fail "plan expected"
  | Some baseline -> begin
      let generous = baseline.Use_cases.est_money *. 10.0 in
      match Use_cases.plan_for_price opt ~budget:generous Tpch.q3 with
      | Some (p, within) ->
          Alcotest.(check bool) "within budget" true within;
          Alcotest.(check bool) "respects budget" true (p.Use_cases.est_money <= generous)
      | None -> Alcotest.fail "plan expected"
    end

let test_use_case_c_to_pr_impossible_budget () =
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  match Use_cases.plan_for_price opt ~budget:1e-9 Tpch.q3 with
  | Some (_, within) -> Alcotest.(check bool) "flagged as over budget" false within
  | None -> Alcotest.fail "fallback plan expected"

let test_use_case_rejects_bad_budget () =
  let opt = make_opt () in
  Alcotest.check_raises "budget"
    (Invalid_argument "Use_cases.plan_for_price: nonpositive budget") (fun () ->
      ignore (Use_cases.plan_for_price opt ~budget:0.0 Tpch.q3))

(* -------------------------------------------------------------- Adaptive *)

let test_adaptive_reoptimize_improves () =
  let opt = make_opt () in
  match Cost_based.optimize opt Tpch.q3 with
  | None -> Alcotest.fail "plan expected"
  | Some (stale, _) -> begin
      (* Load spike: the cluster shrinks to 8 small containers. *)
      let shrunk = Conditions.make ~max_containers:8 ~max_gb:3.0 () in
      match Adaptive.reoptimize opt ~stale ~new_conditions:shrunk Tpch.q3 with
      | Some r ->
          Alcotest.(check bool) "fresh plan within new conditions" true
            (List.for_all
               (fun (_, pr) -> Conditions.contains shrunk pr)
               (Join_tree.annotations r.Adaptive.fresh));
          Alcotest.(check bool) "re-optimizing never hurts" true
            (r.Adaptive.fresh_cost <= r.Adaptive.stale_cost_now +. 1e-6);
          Alcotest.(check bool) "improvement >= 1" true (r.Adaptive.improvement >= 1.0 -. 1e-9)
      | None -> Alcotest.fail "reoptimization expected"
    end

let test_adaptive_detects_plan_change () =
  let opt = make_opt () in
  match Cost_based.optimize opt Tpch.q3 with
  | None -> Alcotest.fail "plan expected"
  | Some (stale, _) -> begin
      let shrunk = Conditions.make ~max_containers:4 ~max_gb:2.0 () in
      match Adaptive.reoptimize opt ~stale ~new_conditions:shrunk Tpch.q3 with
      | Some r ->
          (* The stale plan used ~100 containers; 4-container conditions must
             change resource annotations at minimum. *)
          Alcotest.(check bool) "plan changed" true r.Adaptive.plan_changed
      | None -> Alcotest.fail "reoptimization expected"
    end

let test_adaptive_noop_on_same_conditions () =
  let opt = make_opt () in
  match Cost_based.optimize opt Tpch.q12 with
  | None -> Alcotest.fail "plan expected"
  | Some (stale, cost) -> begin
      match Adaptive.reoptimize opt ~stale ~new_conditions:Conditions.default Tpch.q12 with
      | Some r -> Alcotest.(check (float 1e-6)) "same cost" cost r.Adaptive.fresh_cost
      | None -> Alcotest.fail "reoptimization expected"
    end

(* --------------------------------------------------------------- Explain *)

let test_explain_contains_structure () =
  let opt = make_opt () in
  match Cost_based.optimize opt Tpch.q3 with
  | None -> Alcotest.fail "plan expected"
  | Some (plan, _) ->
      let s = Explain.joint model schema plan in
      let contains needle =
        let n = String.length needle and h = String.length s in
        let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun needle -> Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
        [ "Joint query/resource plan"; "join 1"; "join 2"; "total:"; "est price" ]

let test_explain_diff_identical () =
  let opt = make_opt () in
  match Cost_based.optimize opt Tpch.q12 with
  | Some (plan, _) ->
      let s = Explain.diff ~before:plan ~after:plan in
      Alcotest.(check string) "identical" "plans are identical\n" s
  | None -> Alcotest.fail "plan expected"

let test_explain_diff_resources () =
  let opt = make_opt () in
  match Cost_based.optimize opt Tpch.q12 with
  | Some (plan, _) ->
      let shrunk =
        Join_tree.map_annot (fun (impl, _) -> (impl, res 1 1.0)) plan
      in
      let s = Explain.diff ~before:plan ~after:shrunk in
      let contains needle =
        let n = String.length needle and h = String.length s in
        let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "reports join 1" true (contains "join 1");
      Alcotest.(check bool) "shows new resources" true (contains "<1 x 1.0GB>")
  | None -> Alcotest.fail "plan expected"

let test_explain_diff_order_change () =
  let a = Join_tree.Join ((Join_impl.Smj, res 1 1.0), Join_tree.Scan "orders", Join_tree.Scan "lineitem") in
  let b =
    Join_tree.Join ((Join_impl.Smj, res 1 1.0), Join_tree.Scan "lineitem", Join_tree.Scan "orders")
  in
  let s = Explain.diff ~before:a ~after:b in
  Alcotest.(check bool) "flags order change" true
    (String.length s >= 18 && String.sub s 0 18 = "join order changed")

let test_q5_preset () =
  Alcotest.(check int) "6 tables" 6 (List.length Tpch.q5);
  Alcotest.(check bool) "joinable" true (Schema.joinable schema Tpch.q5);
  let opt = make_opt () in
  match Cost_based.optimize opt Tpch.q5 with
  | Some (plan, _) -> Alcotest.(check int) "5 joins" 5 (Join_tree.n_joins plan)
  | None -> Alcotest.fail "plan expected"

(* ---------------------------------------------------------------- Models *)

let test_models_memoized () =
  let a = Models.hive () in
  let b = Models.hive () in
  Alcotest.(check bool) "same physical model" true (a == b)

let test_models_spark_differs () =
  let h = Models.hive () and s = Models.spark () in
  Alcotest.(check bool) "different coefficients" true
    (h.Raqo_cost.Op_cost.smj <> s.Raqo_cost.Op_cost.smj)

(* ---------------------------------------------------------------- Pareto *)

let test_pareto_front_nondominated () =
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  let front = Raqo.Pareto.front opt Tpch.q3 in
  Alcotest.(check bool) "nonempty" true (front <> []);
  List.iter
    (fun (p : Use_cases.priced_plan) ->
      Alcotest.(check bool) "nobody dominates a front member" true
        (not
           (List.exists
              (fun (q : Use_cases.priced_plan) ->
                q != p
                && q.Use_cases.est_cost <= p.Use_cases.est_cost
                && q.Use_cases.est_money <= p.Use_cases.est_money
                && (q.Use_cases.est_cost < p.Use_cases.est_cost
                   || q.Use_cases.est_money < p.Use_cases.est_money))
              front)))
    front

let test_pareto_front_sorted_by_cost () =
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  let front = Raqo.Pareto.front opt Tpch.q3 in
  let costs = List.map (fun p -> p.Use_cases.est_cost) front in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ascending cost" true (nondecreasing costs)

let test_pareto_knee_is_member () =
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  let front = Raqo.Pareto.front opt Tpch.q3 in
  match Raqo.Pareto.knee front with
  | Some k -> Alcotest.(check bool) "knee on front" true (List.memq k front)
  | None -> Alcotest.fail "front is nonempty"

let test_pareto_knee_empty () =
  Alcotest.(check bool) "None on empty" true (Raqo.Pareto.knee [] = None)

let test_pareto_render () =
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  let s = Raqo.Pareto.render (Raqo.Pareto.front opt Tpch.q12) in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* ---------------------------------------------------------------- Robust *)

let roomy = Conditions.default
let tight = Conditions.make ~max_containers:10 ~max_gb:3.0 ()

let test_robust_single_scenario_matches_nominal () =
  let opt = make_opt () in
  match
    (Raqo.Robust.optimize opt ~scenarios:[ roomy ] Tpch.q3, Cost_based.optimize opt Tpch.q3)
  with
  | Some choice, Some (_, nominal) ->
      Alcotest.(check (float 1e-6)) "score = nominal cost" nominal choice.Raqo.Robust.score
  | _ -> Alcotest.fail "both should plan"

let test_robust_worst_case_finite () =
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  match Raqo.Robust.optimize opt ~scenarios:[ roomy; tight ] Tpch.q3 with
  | Some choice ->
      Alcotest.(check int) "both scenarios evaluated" 2
        (List.length choice.Raqo.Robust.per_scenario);
      Alcotest.(check bool) "finite worst case" true (Float.is_finite choice.Raqo.Robust.score);
      (* The worst case is the max of per-scenario costs. *)
      let max_cost =
        List.fold_left
          (fun acc (_, _, c) -> Float.max acc c)
          Float.neg_infinity choice.Raqo.Robust.per_scenario
      in
      Alcotest.(check (float 1e-9)) "score = max" max_cost choice.Raqo.Robust.score
  | None -> Alcotest.fail "robust plan expected"

let test_robust_beats_nominal_in_worst_case () =
  (* Evaluating the nominal (roomy-optimal) shape under both scenarios can
     only be >= the robust choice's worst case. *)
  let opt = make_opt ~kind:Cost_based.Fast_randomized () in
  match
    (Raqo.Robust.optimize opt ~scenarios:[ roomy; tight ] Tpch.q3, Cost_based.optimize opt Tpch.q3)
  with
  | Some choice, Some (nominal_plan, _) ->
      let shape = Raqo_planner.Coster.shape_of nominal_plan in
      let worst_of_nominal =
        List.fold_left
          (fun acc conditions ->
            let o = Cost_based.with_conditions opt conditions in
            let coster =
              Raqo_planner.Coster.raqo (Cost_based.model o) (Cost_based.schema o)
                (Cost_based.resource_planner o)
            in
            match Raqo_planner.Coster.cost_tree coster shape with
            | Some (_, c) -> Float.max acc c
            | None -> Float.infinity)
          Float.neg_infinity [ roomy; tight ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "robust %.1f <= nominal-worst %.1f" choice.Raqo.Robust.score
           worst_of_nominal)
        true
        (choice.Raqo.Robust.score <= worst_of_nominal +. 1e-6)
  | _ -> Alcotest.fail "both should plan"

let test_robust_expected_criterion () =
  let opt = make_opt () in
  match
    Raqo.Robust.optimize opt ~scenarios:[ roomy; tight ]
      ~criterion:(Raqo.Robust.Expected [ 0.7; 0.3 ]) Tpch.q12
  with
  | Some choice ->
      let expected =
        match choice.Raqo.Robust.per_scenario with
        | [ (_, _, c1); (_, _, c2) ] -> (0.7 *. c1) +. (0.3 *. c2)
        | _ -> Alcotest.fail "two scenarios"
      in
      Alcotest.(check (float 1e-9)) "weighted mean" expected choice.Raqo.Robust.score
  | None -> Alcotest.fail "plan expected"

let test_robust_rejects_bad_inputs () =
  let opt = make_opt () in
  Alcotest.check_raises "no scenarios" (Invalid_argument "Robust.optimize: no scenarios")
    (fun () -> ignore (Raqo.Robust.optimize opt ~scenarios:[] Tpch.q12));
  Alcotest.check_raises "bad weights"
    (Invalid_argument "Robust.optimize: weights must sum to 1") (fun () ->
      ignore
        (Raqo.Robust.optimize opt ~scenarios:[ roomy ]
           ~criterion:(Raqo.Robust.Expected [ 0.5 ]) Tpch.q12))

(* --------------------------------------------- End-to-end (Fig 2 property) *)

let test_raqo_beats_default_two_step_on_simulator () =
  (* The Figure 2 scenario: the two-step baseline picks the stock plan
     (SMJ, data-size rule) and a user-guessed 10 x 3 GB configuration; RAQO
     picks plan and resources jointly. Ground-truth simulated runtime of the
     RAQO plan must win by a clear margin. *)
  let opt = make_opt () in
  match Cost_based.optimize opt Tpch.q12 with
  | None -> Alcotest.fail "plan expected"
  | Some (joint, _) -> begin
      let guessed = res 10 3.0 in
      let default_plan = Raqo_planner.Heuristics.default_plan hive schema Tpch.q12 in
      match
        ( Simulate.run_joint hive schema joint,
          Simulate.run_plain hive schema ~resources:guessed default_plan )
      with
      | Ok raqo_run, Ok default_run ->
          Alcotest.(check bool)
            (Printf.sprintf "RAQO %.0fs vs default %.0fs"
               raqo_run.Simulate.seconds default_run.Simulate.seconds)
            true
            (raqo_run.Simulate.seconds < default_run.Simulate.seconds)
      | Error e, _ | _, Error e -> Alcotest.fail e
    end

let test_rule_based_never_worse_than_default_on_grid () =
  (* Rule-based RAQO with the trained tree, against the stock rule, across a
     resource grid, judged by the ground-truth simulator on the paper's
     5.1 GB orders sample. Decision-tree choices are per-join and
     resource-aware, so they must match or beat the stock rule everywhere
     the tree classifies correctly (allow a small tolerance for the few
     misclassified grid cells). *)
  let tree = Lazy.force trained_tree in
  let sampled =
    Schema.with_relation schema
      (Raqo_catalog.Relation.scale (Schema.find schema "orders") (5.1 /. 16.48))
  in
  let losses = ref 0 and cells = ref 0 in
  List.iter
    (fun nc ->
      List.iter
        (fun gb ->
          let r = res nc gb in
          let raqo = Rule_based.plan tree sampled ~resources:r Tpch.q12 in
          let stock = Rule_based.default_plan hive sampled ~resources:r Tpch.q12 in
          match
            ( Simulate.run_plain hive sampled ~resources:r raqo,
              Simulate.run_plain hive sampled ~resources:r stock )
          with
          | Ok a, Ok b ->
              incr cells;
              if a.Simulate.seconds > b.Simulate.seconds *. 1.001 then incr losses
          | Error _, _ | _, Error _ -> ())
        [ 3.0; 5.0; 7.0; 9.0 ])
    [ 10; 20; 30; 40 ];
  Alcotest.(check bool)
    (Printf.sprintf "losses %d of %d cells" !losses !cells)
    true
    (!cells > 10 && float_of_int !losses /. float_of_int !cells < 0.1)

let () =
  Alcotest.run "raqo_core"
    [
      ( "join_dt",
        [
          Alcotest.test_case "default tree = stock rule" `Quick test_default_tree_is_stock_rule;
          Alcotest.test_case "default tree is resource-blind" `Quick
            test_default_tree_ignores_resources;
          Alcotest.test_case "RAQO tree is resource-aware" `Quick test_raqo_tree_is_resource_aware;
          Alcotest.test_case "RAQO tree accuracy" `Quick test_raqo_tree_accuracy;
          Alcotest.test_case "RAQO tree deeper than default" `Quick
            test_raqo_tree_deeper_than_default;
          Alcotest.test_case "render uses feature names" `Quick test_tree_render_has_feature_names;
          Alcotest.test_case "label mapping roundtrip" `Quick test_impl_label_roundtrip;
        ] );
      ( "rule_based",
        [
          Alcotest.test_case "implementation flips with resources" `Quick
            test_rule_based_flips_with_resources;
          Alcotest.test_case "default plan = stock heuristic" `Quick
            test_rule_based_default_plan_matches_heuristic;
          Alcotest.test_case "valid plans on All" `Quick test_rule_based_valid_plans;
        ] );
      ( "cost_based",
        [
          Alcotest.test_case "Selinger RAQO on all TPC-H queries" `Quick
            test_cost_based_selinger_all_queries;
          Alcotest.test_case "Bushy-DP RAQO on All" `Quick test_cost_based_bushy_dp;
          Alcotest.test_case "FastRandomized RAQO on All" `Quick test_cost_based_fast_randomized;
          Alcotest.test_case "QO baseline keeps fixed resources" `Quick
            test_cost_based_qo_baseline_fixed_resources;
          Alcotest.test_case "RAQO never worse than any fixed baseline" `Quick
            test_cost_based_raqo_not_worse_than_qo;
          Alcotest.test_case "hill climb explores far fewer configs" `Quick
            test_hill_climb_fewer_evals_than_brute_force;
          Alcotest.test_case "caching reduces evals further" `Quick
            test_cache_reduces_evals_further;
          Alcotest.test_case "hill climb matches brute force here" `Quick
            test_hill_climb_matches_brute_force_on_trained_model;
          Alcotest.test_case "condition changes rebound resources" `Quick
            test_with_conditions_changes_bounds;
          Alcotest.test_case "candidates for multi-objective use" `Quick test_candidates_nonempty;
          Alcotest.test_case "kernel toggle changes nothing observable" `Quick
            test_kernel_toggle_is_invisible;
        ] );
      ( "use_cases",
        [
          Alcotest.test_case "r => p" `Quick test_use_case_r_to_p;
          Alcotest.test_case "p => (r, c) keeps the shape" `Quick test_use_case_p_to_r;
          Alcotest.test_case "joint (p, r) beats fixed" `Quick test_use_case_joint_beats_fixed;
          Alcotest.test_case "c => (p, r) respects the budget" `Quick
            test_use_case_c_to_pr_budget_respected;
          Alcotest.test_case "c => (p, r) flags impossible budgets" `Quick
            test_use_case_c_to_pr_impossible_budget;
          Alcotest.test_case "rejects nonpositive budgets" `Quick test_use_case_rejects_bad_budget;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "re-optimizing never hurts" `Quick test_adaptive_reoptimize_improves;
          Alcotest.test_case "detects plan changes on shrink" `Quick
            test_adaptive_detects_plan_change;
          Alcotest.test_case "no-op on unchanged conditions" `Quick
            test_adaptive_noop_on_same_conditions;
        ] );
      ( "explain",
        [
          Alcotest.test_case "explain output structure" `Quick test_explain_contains_structure;
          Alcotest.test_case "diff: identical plans" `Quick test_explain_diff_identical;
          Alcotest.test_case "diff: resource changes" `Quick test_explain_diff_resources;
          Alcotest.test_case "diff: order changes" `Quick test_explain_diff_order_change;
          Alcotest.test_case "Q5 preset plans" `Quick test_q5_preset;
        ] );
      ( "models",
        [
          Alcotest.test_case "memoized" `Quick test_models_memoized;
          Alcotest.test_case "spark differs from hive" `Quick test_models_spark_differs;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "front is non-dominated" `Quick test_pareto_front_nondominated;
          Alcotest.test_case "front sorted by cost" `Quick test_pareto_front_sorted_by_cost;
          Alcotest.test_case "knee lies on the front" `Quick test_pareto_knee_is_member;
          Alcotest.test_case "knee of empty front" `Quick test_pareto_knee_empty;
          Alcotest.test_case "render" `Quick test_pareto_render;
        ] );
      ( "robust",
        [
          Alcotest.test_case "single scenario = nominal" `Quick
            test_robust_single_scenario_matches_nominal;
          Alcotest.test_case "worst case over scenarios" `Quick test_robust_worst_case_finite;
          Alcotest.test_case "robust <= nominal in the worst case" `Quick
            test_robust_beats_nominal_in_worst_case;
          Alcotest.test_case "expected-cost criterion" `Quick test_robust_expected_criterion;
          Alcotest.test_case "input validation" `Quick test_robust_rejects_bad_inputs;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "RAQO beats the two-step default (Fig 2)" `Quick
            test_raqo_beats_default_two_step_on_simulator;
          Alcotest.test_case "rule-based RAQO vs stock rule on the grid" `Quick
            test_rule_based_never_worse_than_default_on_grid;
        ] );
    ]
