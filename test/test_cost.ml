(* Tests for Raqo_cost: feature vectors, linear regression, operator cost
   models (including the paper's published coefficients), plan costing,
   multi-objective dominance. *)

module Feature = Raqo_cost.Feature
module Linreg = Raqo_cost.Linreg
module Op_cost = Raqo_cost.Op_cost
module Plan_cost = Raqo_cost.Plan_cost
module Objective = Raqo_cost.Objective
module Resources = Raqo_cluster.Resources
module Join_impl = Raqo_plan.Join_impl
module Join_tree = Raqo_plan.Join_tree

let res nc gb = Resources.make ~containers:nc ~container_gb:gb

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* -------------------------------------------------------------- Feature *)

let test_feature_paper_vector () =
  let x = Feature.vector ~small_gb:2.0 ~resources:(res 10 3.0) in
  Alcotest.(check int) "7 dims" 7 (Array.length x);
  check_float "ss" 2.0 x.(0);
  check_float "ss2" 4.0 x.(1);
  check_float "cs" 3.0 x.(2);
  check_float "cs2" 9.0 x.(3);
  check_float "nc" 10.0 x.(4);
  check_float "nc2" 100.0 x.(5);
  check_float "cs*nc" 30.0 x.(6)

let test_feature_extended_vector () =
  let x = Feature.vector_of Feature.Extended ~small_gb:2.0 ~resources:(res 10 4.0) in
  Alcotest.(check int) "11 dims" 11 (Array.length x);
  check_float "1/nc" 0.1 x.(7);
  check_float "ss/nc" 0.2 x.(8);
  check_float "ss*nc" 20.0 x.(9);
  check_float "ss/cs" 0.5 x.(10)

let test_feature_names_align () =
  Alcotest.(check int) "paper names" (Feature.dims Feature.Paper)
    (Array.length (Feature.names Feature.Paper));
  Alcotest.(check int) "extended names" (Feature.dims Feature.Extended)
    (Array.length (Feature.names Feature.Extended))

let test_feature_with_intercept () =
  let x = Feature.vector_with_intercept ~small_gb:1.0 ~resources:(res 2 2.0) in
  Alcotest.(check int) "8 dims" 8 (Array.length x);
  check_float "leading 1" 1.0 x.(0)

(* --------------------------------------------------------------- Linreg *)

let test_linreg_recovers_intercept () =
  let features = Array.init 30 (fun i -> [| float_of_int i; float_of_int (i * i) |]) in
  let targets = Array.map (fun row -> 5.0 +. (2.0 *. row.(0)) -. (0.5 *. row.(1))) features in
  let m = Linreg.train ~features ~targets () in
  check_float ~eps:1e-5 "intercept" 5.0 m.Linreg.intercept;
  check_float ~eps:1e-5 "b0" 2.0 m.Linreg.coefficients.(0);
  check_float ~eps:1e-5 "b1" (-0.5) m.Linreg.coefficients.(1)

let test_linreg_no_intercept () =
  let features = Array.init 10 (fun i -> [| float_of_int (i + 1) |]) in
  let targets = Array.map (fun row -> 3.0 *. row.(0)) features in
  let m = Linreg.train ~with_intercept:false ~features ~targets () in
  check_float "no intercept" 0.0 m.Linreg.intercept;
  check_float ~eps:1e-6 "slope" 3.0 m.Linreg.coefficients.(0)

let test_linreg_r_squared_perfect () =
  let features = Array.init 10 (fun i -> [| float_of_int i |]) in
  let targets = Array.map (fun row -> 1.0 +. row.(0)) features in
  let m = Linreg.train ~features ~targets () in
  check_float ~eps:1e-9 "r2 = 1" 1.0 (Linreg.r_squared m ~features ~targets)

let test_linreg_r_squared_mean_model () =
  (* Slope-less data: R² of the fitted (constant) model is ~0 against noise
     structure, but the degenerate all-equal target yields R² = 1 by
     convention. *)
  let features = Array.init 10 (fun i -> [| float_of_int i |]) in
  let targets = Array.make 10 7.0 in
  let m = Linreg.train ~features ~targets () in
  check_float "constant target" 1.0 (Linreg.r_squared m ~features ~targets)

let test_linreg_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Linreg.train: no samples") (fun () ->
      ignore (Linreg.train ~features:[||] ~targets:[||] ()))

let test_linreg_rejects_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Linreg.train: ragged features")
    (fun () ->
      ignore (Linreg.train ~features:[| [| 1.0 |]; [| 1.0; 2.0 |] |] ~targets:[| 1.0; 2.0 |] ()))

let prop_linreg_recovers_planted =
  QCheck.Test.make ~name:"OLS recovers planted 3-feature model" ~count:50
    QCheck.(triple (float_range (-10.) 10.) (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (b0, b1, b2) ->
      let features =
        Array.init 40 (fun i ->
            let x = float_of_int (i mod 7) and y = float_of_int (i mod 5) in
            [| x; y; x *. y |])
      in
      let targets =
        Array.map (fun r -> (b0 *. r.(0)) +. (b1 *. r.(1)) +. (b2 *. r.(2))) features
      in
      let m = Linreg.train ~with_intercept:false ~features ~targets () in
      let c = m.Linreg.coefficients in
      Float.abs (c.(0) -. b0) < 1e-4
      && Float.abs (c.(1) -. b1) < 1e-4
      && Float.abs (c.(2) -. b2) < 1e-4)

(* -------------------------------------------------------------- Op_cost *)

let test_paper_coefficients_verbatim () =
  (* Spot-check the published vectors survived transcription. *)
  let m = Op_cost.paper in
  check_float "smj[0]" 16.2643613 m.Op_cost.smj.Linreg.coefficients.(0);
  check_float "smj[6]" 0.110387975 m.Op_cost.smj.Linreg.coefficients.(6);
  check_float "bhj[0]" 10073.9509 m.Op_cost.bhj.Linreg.coefficients.(0);
  check_float "bhj[6]" (-137.319484) m.Op_cost.bhj.Linreg.coefficients.(6)

let test_paper_model_prediction_matches_dot_product () =
  let m = Op_cost.paper in
  let r = res 10 5.0 in
  let x = Feature.vector ~small_gb:3.0 ~resources:r in
  let expected = Raqo_util.Linalg.dot m.Op_cost.smj.Linreg.coefficients x in
  match Op_cost.predict m Join_impl.Smj ~small_gb:3.0 ~resources:r with
  | Some c -> check_float "manual dot" expected c
  | None -> Alcotest.fail "SMJ always feasible"

let test_op_cost_bhj_oom () =
  let m = Op_cost.paper in
  Alcotest.(check bool) "infeasible" true
    (Op_cost.predict m Join_impl.Bhj ~small_gb:5.0 ~resources:(res 10 2.0) = None);
  check_float "predict_exn infinity" Float.infinity
    (Op_cost.predict_exn m Join_impl.Bhj ~small_gb:5.0 ~resources:(res 10 2.0))

let test_op_cost_floor () =
  let m = Op_cost.with_floor 10.0 Op_cost.paper in
  (* The paper's SMJ model goes negative at large container counts; the
     floor clamps it. *)
  match Op_cost.predict m Join_impl.Smj ~small_gb:0.5 ~resources:(res 100 1.0) with
  | Some c -> Alcotest.(check bool) "clamped" true (c >= 10.0)
  | None -> Alcotest.fail "SMJ feasible"

let test_op_cost_floor_rejects_negative () =
  Alcotest.check_raises "floor" (Invalid_argument "Op_cost.with_floor: negative floor")
    (fun () -> ignore (Op_cost.with_floor (-1.0) Op_cost.paper))

let test_best_impl_respects_oom () =
  let m = Op_cost.paper in
  match Op_cost.best_impl m ~small_gb:5.0 ~resources:(res 10 2.0) with
  | Some (impl, _) -> Alcotest.(check bool) "SMJ when BHJ OOMs" true (Join_impl.equal impl Join_impl.Smj)
  | None -> Alcotest.fail "SMJ feasible"

(* ------------------------------------------------------------ Plan_cost *)

let schema = Raqo_catalog.Tpch.schema ()

let test_plan_cost_additive () =
  let m = Op_cost.paper in
  let r = res 10 5.0 in
  let single =
    Join_tree.Join ((Join_impl.Smj, r), Join_tree.Scan "orders", Join_tree.Scan "lineitem")
  in
  let double =
    Join_tree.Join ((Join_impl.Smj, r), single, Join_tree.Scan "customer")
  in
  let c1 = (Plan_cost.joint m schema single).Plan_cost.cost in
  let c2 = (Plan_cost.joint m schema double).Plan_cost.cost in
  let small2 =
    Plan_cost.join_small_gb schema ~left:[ "orders"; "lineitem" ] ~right:[ "customer" ]
  in
  let expected_extra = Op_cost.predict_exn m Join_impl.Smj ~small_gb:small2 ~resources:r in
  check_float ~eps:1e-9 "additive" (c1 +. expected_extra) c2

let test_plan_cost_infeasible_infinite () =
  let m = Op_cost.paper in
  let bad =
    Join_tree.Join ((Join_impl.Bhj, res 10 2.0), Join_tree.Scan "orders", Join_tree.Scan "lineitem")
  in
  check_float "infinite" Float.infinity (Plan_cost.joint m schema bad).Plan_cost.cost

let test_plan_cost_plain_vs_joint () =
  let m = Op_cost.paper in
  let r = res 10 5.0 in
  let plain = Join_tree.Join (Join_impl.Smj, Join_tree.Scan "orders", Join_tree.Scan "lineitem") in
  let joint = Join_tree.Join ((Join_impl.Smj, r), Join_tree.Scan "orders", Join_tree.Scan "lineitem") in
  check_float "same" (Plan_cost.plain m schema ~resources:r plain).Plan_cost.cost
    (Plan_cost.joint m schema joint).Plan_cost.cost

let test_plan_cost_money_scales_with_usage () =
  let m = Op_cost.paper in
  let r = res 10 5.0 in
  let joint = Join_tree.Join ((Join_impl.Smj, r), Join_tree.Scan "orders", Join_tree.Scan "lineitem") in
  let est = Plan_cost.joint m schema joint in
  let money = Plan_cost.money est in
  check_float "money = priced gb_seconds"
    (Raqo_cluster.Pricing.gb_seconds_cost Raqo_cluster.Pricing.default est.Plan_cost.gb_seconds)
    money

let test_join_small_gb_is_min_side () =
  let s = Plan_cost.join_small_gb schema ~left:[ "lineitem" ] ~right:[ "orders" ] in
  let orders = Raqo_catalog.Relation.size_gb (Raqo_catalog.Schema.find schema "orders") in
  check_float "orders side" orders s

(* ------------------------------------------------------------ Objective *)

let test_dominates_strict () =
  let a = Objective.make ~time:1.0 ~money:1.0 in
  let b = Objective.make ~time:2.0 ~money:2.0 in
  Alcotest.(check bool) "a dom b" true (Objective.dominates a b);
  Alcotest.(check bool) "b not dom a" false (Objective.dominates b a);
  Alcotest.(check bool) "not self-dominating" false (Objective.dominates a a)

let test_dominates_incomparable () =
  let a = Objective.make ~time:1.0 ~money:5.0 in
  let b = Objective.make ~time:5.0 ~money:1.0 in
  Alcotest.(check bool) "a not dom b" false (Objective.dominates a b);
  Alcotest.(check bool) "b not dom a" false (Objective.dominates b a)

let test_pareto_front () =
  let items = [ (1.0, 5.0); (5.0, 1.0); (2.0, 2.0); (6.0, 6.0) ] in
  let objective (t, m) = Objective.make ~time:t ~money:m in
  let front = Objective.pareto_front items ~objective in
  Alcotest.(check int) "3 nondominated" 3 (List.length front);
  Alcotest.(check bool) "(6,6) dominated" true (not (List.mem (6.0, 6.0) front))

let test_scalarize_weights () =
  let o = Objective.make ~time:10.0 ~money:0.002 in
  check_float "pure time" 10.0 (Objective.scalarize ~time_weight:1.0 o);
  check_float "pure money" 2.0 (Objective.scalarize ~time_weight:0.0 o);
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Objective.scalarize: weight out of [0,1]") (fun () ->
      ignore (Objective.scalarize ~time_weight:1.5 o))

let prop_pareto_front_sound =
  (* Nothing in the front is dominated by anything in the input. *)
  QCheck.Test.make ~name:"pareto front soundness" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 25) (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun items ->
      let objective (t, m) = Objective.make ~time:t ~money:m in
      let front = Objective.pareto_front items ~objective in
      List.for_all
        (fun f ->
          not
            (List.exists
               (fun x -> x != f && Objective.dominates (objective x) (objective f))
               items))
        front)

let prop_pareto_front_complete =
  (* Everything not in the front is dominated by something. *)
  QCheck.Test.make ~name:"pareto front completeness" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 25) (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun items ->
      let objective (t, m) = Objective.make ~time:t ~money:m in
      let front = Objective.pareto_front items ~objective in
      List.for_all
        (fun x ->
          List.memq x front
          || List.exists (fun y -> y != x && Objective.dominates (objective y) (objective x)) items)
        items)

(* --------------------------------------------------------------- Kernel *)

module Kernel = Raqo_cost.Kernel
module Conditions = Raqo_cluster.Conditions

(* Kernel outputs must be *bit*-identical to the scalar path, not merely
   close: downstream tie-breaks compare raw floats. *)
let check_bits msg expected actual =
  if Int64.bits_of_float expected <> Int64.bits_of_float actual then
    Alcotest.failf "%s: expected %h, got %h" msg expected actual

let floored = Op_cost.with_floor 0.01 Op_cost.paper

(* A well-formed extended-space model (11-dim coefficients), for the
   refuse-and-fall-back satellite. *)
let extended_model =
  let extend (l : Linreg.t) =
    Linreg.of_coefficients ~intercept:l.Linreg.intercept
      (Array.append l.Linreg.coefficients [| 0.01; 0.02; 0.03; 0.04 |])
  in
  {
    Op_cost.paper with
    Op_cost.space = Feature.Extended;
    smj = extend Op_cost.paper.Op_cost.smj;
    bhj = extend Op_cost.paper.Op_cost.bhj;
    scan = extend Op_cost.paper.Op_cost.scan;
  }

let test_kernel_refuses_extended_space () =
  (* Mirrors region_lower_bound: the extended space has decreasing monomials,
     so neither kernels nor bounds exist there — callers keep the scalar
     path. *)
  List.iter
    (fun impl ->
      Alcotest.(check bool)
        "no kernel for the extended space" true
        (Kernel.make extended_model impl ~small_gb:2.0 = None);
      Alcotest.(check bool)
        "no region bound for the extended space either" true
        (Op_cost.region_lower_bound extended_model impl ~small_gb:2.0 = None);
      Alcotest.(check bool)
        "paper space does compile" true
        (Kernel.make floored impl ~small_gb:2.0 <> None))
    Join_impl.all

let test_kernel_predict_bhj_cliff () =
  let small_gb = 5.0 in
  let k = Option.get (Kernel.make floored Join_impl.Bhj ~small_gb) in
  (* Below the OOM threshold (5.0 / 1.15 ≈ 4.35 GB) the mask applies. *)
  check_bits "infeasible side is infinity" Float.infinity
    (Kernel.predict k ~containers:4 ~container_gb:4.0);
  let r = res 4 5.0 in
  check_bits "feasible side matches the scalar model"
    (Op_cost.predict_exn floored Join_impl.Bhj ~small_gb ~resources:r)
    (Kernel.predict_resources k r)

let gen_impl = QCheck.map (fun b -> if b then Join_impl.Smj else Join_impl.Bhj) QCheck.bool

let prop_kernel_predict_bitwise =
  QCheck.Test.make ~name:"kernel predict is bit-identical to predict_exn" ~count:500
    QCheck.(
      quad gen_impl (float_range 0.01 40.0) (int_range 1 400) (float_range 0.25 16.0))
    (fun (impl, small_gb, containers, container_gb) ->
      List.for_all
        (fun model ->
          let k = Option.get (Kernel.make model impl ~small_gb) in
          let resources = res containers container_gb in
          Int64.bits_of_float (Kernel.predict k ~containers ~container_gb)
          = Int64.bits_of_float (Op_cost.predict_exn model impl ~small_gb ~resources))
        [ Op_cost.paper; floored ])

let prop_kernel_sweep_bitwise =
  (* One sweep = per-point scalar prediction, bitwise, at every grid cell of
     random (possibly ragged) grids; also pins the j-major cell layout. *)
  QCheck.Test.make ~name:"kernel sweep is bit-identical per grid cell" ~count:100
    QCheck.(
      quad gen_impl (float_range 0.01 30.0) (int_range 1 40) (int_range 1 12))
    (fun (impl, small_gb, max_containers, gb_steps) ->
      let c =
        Conditions.make ~min_containers:1 ~max_containers ~container_step:1 ~min_gb:0.5
          ~max_gb:(0.5 +. (0.75 *. float_of_int (gb_steps - 1)))
          ~gb_step:0.75 ()
      in
      let k = Option.get (Kernel.make floored impl ~small_gb) in
      let n = Conditions.n_configs c in
      let buf = Array.make n nan in
      Kernel.sweep k c buf;
      let nc = Conditions.steps_containers c in
      List.for_all2
        (fun idx (r : Resources.t) ->
          let cell = buf.(((idx / nc) * nc) + (idx mod nc)) in
          Int64.bits_of_float cell
          = Int64.bits_of_float (Op_cost.predict_exn floored impl ~small_gb ~resources:r)
          && Int64.bits_of_float cell
             = Int64.bits_of_float
                 (Kernel.point_at k c ~i:(idx mod nc) ~j:(idx / nc)))
        (List.init n Fun.id) (Conditions.all_configs c))

let prop_kernel_bound_bitwise =
  (* The kernel's region bound must replicate the scalar bound closure so
     pruned kernel searches make identical pruning decisions. *)
  QCheck.Test.make ~name:"kernel region bound is bit-identical" ~count:200
    QCheck.(
      quad gen_impl (float_range 0.01 30.0) (pair (int_range 1 50) (int_range 0 49))
        (pair (float_range 0.5 12.0) (float_range 0.0 8.0)))
    (fun (impl, small_gb, (nc_lo, nc_extra), (gb_lo, gb_extra)) ->
      let lo = res nc_lo gb_lo in
      let hi = res (nc_lo + nc_extra) (gb_lo +. gb_extra) in
      let k = Option.get (Kernel.make floored impl ~small_gb) in
      let scalar = Option.get (Op_cost.region_lower_bound floored impl ~small_gb) in
      Int64.bits_of_float (Kernel.bound k ~lo ~hi) = Int64.bits_of_float (scalar ~lo ~hi))

let test_kernel_sweep_rejects_small_buffer () =
  let c = Conditions.make ~max_containers:4 ~max_gb:3.0 () in
  let k = Option.get (Kernel.make floored Join_impl.Smj ~small_gb:1.0) in
  Alcotest.check_raises "undersized scratch"
    (Invalid_argument "Kernel.sweep: scratch buffer too small") (fun () ->
      Kernel.sweep k c (Array.make (Conditions.n_configs c - 1) 0.0))

let test_kernel_scratch_reuse_accounting () =
  let s = Kernel.create_scratch () in
  Alcotest.(check int) "fresh scratch never allocated" 0 (Kernel.allocs s);
  Kernel.ensure s 100;
  Kernel.ensure s 60;
  Kernel.ensure s 100;
  Alcotest.(check int) "one growth" 1 (Kernel.allocs s);
  Alcotest.(check int) "two reuses" 2 (Kernel.reuses s);
  Kernel.ensure s 101;
  Alcotest.(check int) "regrowth counted" 2 (Kernel.allocs s);
  Alcotest.(check bool) "buffer large enough" true (Array.length (Kernel.buffer s) >= 101)

let test_kernel_sweep_allocation_free () =
  (* The acceptance criterion's allocation probe: a warm sweep over a 60x60
     grid must allocate nothing (the scalar path allocates a feature vector
     and a configuration per cell — tens of thousands of words here). *)
  let c =
    Conditions.make ~min_containers:1 ~max_containers:60 ~container_step:1 ~min_gb:1.0
      ~max_gb:60.0 ~gb_step:1.0 ()
  in
  let k = Option.get (Kernel.make floored Join_impl.Bhj ~small_gb:12.5) in
  let s = Kernel.create_scratch () in
  Kernel.ensure s (Conditions.n_configs c);
  let buf = Kernel.buffer s in
  Kernel.sweep k c buf;
  let w0 = Gc.minor_words () in
  Kernel.sweep k c buf;
  let delta = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "warm sweep allocated %.0f minor words" delta)
    true (delta <= 64.0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_cost"
    [
      ( "feature",
        [
          Alcotest.test_case "paper vector layout" `Quick test_feature_paper_vector;
          Alcotest.test_case "extended vector layout" `Quick test_feature_extended_vector;
          Alcotest.test_case "names align with dims" `Quick test_feature_names_align;
          Alcotest.test_case "intercept variant" `Quick test_feature_with_intercept;
        ] );
      ( "linreg",
        [
          Alcotest.test_case "recovers intercept model" `Quick test_linreg_recovers_intercept;
          Alcotest.test_case "no-intercept mode" `Quick test_linreg_no_intercept;
          Alcotest.test_case "R² = 1 on perfect fit" `Quick test_linreg_r_squared_perfect;
          Alcotest.test_case "R² on constant target" `Quick test_linreg_r_squared_mean_model;
          Alcotest.test_case "rejects empty" `Quick test_linreg_rejects_empty;
          Alcotest.test_case "rejects ragged" `Quick test_linreg_rejects_ragged;
        ]
        @ qsuite [ prop_linreg_recovers_planted ] );
      ( "op_cost",
        [
          Alcotest.test_case "paper coefficients verbatim" `Quick
            test_paper_coefficients_verbatim;
          Alcotest.test_case "prediction = dot product" `Quick
            test_paper_model_prediction_matches_dot_product;
          Alcotest.test_case "BHJ OOM handling" `Quick test_op_cost_bhj_oom;
          Alcotest.test_case "prediction floor" `Quick test_op_cost_floor;
          Alcotest.test_case "floor rejects negatives" `Quick test_op_cost_floor_rejects_negative;
          Alcotest.test_case "best_impl respects OOM" `Quick test_best_impl_respects_oom;
        ] );
      ( "plan_cost",
        [
          Alcotest.test_case "costs are additive over joins" `Quick test_plan_cost_additive;
          Alcotest.test_case "infeasible plans cost infinity" `Quick
            test_plan_cost_infeasible_infinite;
          Alcotest.test_case "plain = joint at same resources" `Quick
            test_plan_cost_plain_vs_joint;
          Alcotest.test_case "money prices gb_seconds" `Quick
            test_plan_cost_money_scales_with_usage;
          Alcotest.test_case "join_small_gb picks the smaller side" `Quick
            test_join_small_gb_is_min_side;
        ] );
      ( "objective",
        [
          Alcotest.test_case "strict dominance" `Quick test_dominates_strict;
          Alcotest.test_case "incomparable points" `Quick test_dominates_incomparable;
          Alcotest.test_case "pareto front" `Quick test_pareto_front;
          Alcotest.test_case "scalarization" `Quick test_scalarize_weights;
        ]
        @ qsuite [ prop_pareto_front_sound; prop_pareto_front_complete ] );
      ( "kernel",
        [
          Alcotest.test_case "refuses the extended space" `Quick
            test_kernel_refuses_extended_space;
          Alcotest.test_case "BHJ OOM cliff is an infinity mask" `Quick
            test_kernel_predict_bhj_cliff;
          Alcotest.test_case "rejects undersized buffers" `Quick
            test_kernel_sweep_rejects_small_buffer;
          Alcotest.test_case "scratch reuse accounting" `Quick
            test_kernel_scratch_reuse_accounting;
          Alcotest.test_case "warm sweep allocates nothing" `Quick
            test_kernel_sweep_allocation_free;
        ]
        @ qsuite
            [
              prop_kernel_predict_bitwise;
              prop_kernel_sweep_bitwise;
              prop_kernel_bound_bitwise;
            ] );
    ]
