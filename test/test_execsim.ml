(* Tests for Raqo_execsim: operator cost shapes (the Section III phenomena),
   OOM behavior, whole-plan simulation. The switch-point assertions encode
   the paper's reported numbers; see EXPERIMENTS.md. *)

module Engine = Raqo_execsim.Engine
module Operators = Raqo_execsim.Operators
module Simulate = Raqo_execsim.Simulate
module Resources = Raqo_cluster.Resources
module Join_impl = Raqo_plan.Join_impl
module Join_tree = Raqo_plan.Join_tree
module Tpch = Raqo_catalog.Tpch

let hive = Engine.hive
let res nc gb = Resources.make ~containers:nc ~container_gb:gb

let time impl ~s ~b r =
  Operators.join_time hive impl ~small_gb:s ~big_gb:b ~resources:r

let smj ~s ~b r =
  match time Join_impl.Smj ~s ~b r with
  | Some t -> t
  | None -> Alcotest.fail "SMJ unexpectedly infeasible"

let bhj ~s ~b r = time Join_impl.Bhj ~s ~b r

(* -------------------------------------------------------- OOM behavior *)

let test_bhj_oom_below_5gb_for_paper_join () =
  (* Paper Fig 3(a): with a 5.1 GB build side, "below 5 GB containers, BHJ is
     not an option as it runs out of memory". *)
  Alcotest.(check bool) "OOM at 4 GB" true (bhj ~s:5.1 ~b:77.0 (res 10 4.0) = None);
  Alcotest.(check bool) "feasible at 5 GB" true (bhj ~s:5.1 ~b:77.0 (res 10 5.0) <> None)

let test_bhj_feasible_34_in_3gb () =
  (* Paper Fig 4(a): 3.4 GB build side still fits a 3 GB container. *)
  Alcotest.(check bool) "3.4 GB in 3 GB feasible" true (bhj ~s:3.4 ~b:77.0 (res 10 3.0) <> None);
  Alcotest.(check bool) "3.5 GB in 3 GB OOM" true (bhj ~s:3.5 ~b:77.0 (res 10 3.0) = None)

let test_bhj_feasible_predicate_matches_join_time () =
  List.iter
    (fun (s, gb) ->
      let r = res 10 gb in
      Alcotest.(check bool)
        (Printf.sprintf "consistency s=%.1f gb=%.1f" s gb)
        (Operators.bhj_feasible hive ~small_gb:s ~resources:r)
        (bhj ~s ~b:77.0 r <> None))
    [ (1.0, 1.0); (1.2, 1.0); (5.1, 4.0); (5.1, 5.0); (12.0, 10.0); (11.0, 10.0) ]

let test_smj_never_ooms () =
  List.iter
    (fun (s, nc, gb) ->
      match time Join_impl.Smj ~s ~b:77.0 (res nc gb) with
      | Some _ -> ()
      | None -> Alcotest.failf "SMJ infeasible at s=%.1f nc=%d gb=%.1f" s nc gb)
    [ (0.5, 1, 1.0); (12.0, 5, 1.0); (50.0, 100, 10.0) ]

(* --------------------------------------- Section III switch-point shape *)

let test_fig3a_switch_at_7gb () =
  (* SMJ wins up to 7 GB containers, BHJ above (5.1 GB orders, 10 cont). *)
  let r6 = res 10 6.0 and r7 = res 10 7.0 and r8 = res 10 8.0 in
  (match bhj ~s:5.1 ~b:77.0 r6 with
  | Some b -> Alcotest.(check bool) "SMJ wins at 6 GB" true (smj ~s:5.1 ~b:77.0 r6 < b)
  | None -> Alcotest.fail "BHJ should be feasible at 6 GB");
  (match bhj ~s:5.1 ~b:77.0 r7 with
  | Some b -> Alcotest.(check bool) "BHJ wins at 7 GB" true (b < smj ~s:5.1 ~b:77.0 r7)
  | None -> Alcotest.fail "BHJ should be feasible at 7 GB");
  match bhj ~s:5.1 ~b:77.0 r8 with
  | Some b -> Alcotest.(check bool) "BHJ wins at 8 GB" true (b < smj ~s:5.1 ~b:77.0 r8)
  | None -> Alcotest.fail "BHJ should be feasible at 8 GB"

let test_fig3a_smj_stable_in_container_size () =
  (* "the performance of SMJ remains relatively stable" across 2..10 GB. *)
  let times = List.map (fun gb -> smj ~s:5.1 ~b:77.0 (res 10 gb)) [ 2.;4.;6.;8.;10. ] in
  let lo = List.fold_left Float.min (List.hd times) times in
  let hi = List.fold_left Float.max (List.hd times) times in
  Alcotest.(check bool) "within 15%" true (hi /. lo < 1.15)

let test_fig3b_crossover_in_containers () =
  (* 3.4 GB orders, 3 GB containers: BHJ wins at low parallelism, SMJ wins
     at 40 containers by at least 2x (paper: "twice faster"). *)
  let at nc = (smj ~s:3.4 ~b:77.0 (res nc 3.0), bhj ~s:3.4 ~b:77.0 (res nc 3.0)) in
  (match at 5 with
  | s, Some b -> Alcotest.(check bool) "BHJ wins at 5" true (b < s)
  | _, None -> Alcotest.fail "BHJ feasible at 5");
  match at 40 with
  | s, Some b -> Alcotest.(check bool) "SMJ 2x faster at 40" true (s *. 2.0 < b)
  | _, None -> Alcotest.fail "BHJ feasible at 40"

let test_smj_improves_with_parallelism () =
  let t10 = smj ~s:5.0 ~b:77.0 (res 10 3.0) in
  let t40 = smj ~s:5.0 ~b:77.0 (res 40 3.0) in
  Alcotest.(check bool) "more containers help SMJ" true (t40 < t10)

let test_bhj_improves_with_memory () =
  match (bhj ~s:5.1 ~b:77.0 (res 10 6.0), bhj ~s:5.1 ~b:77.0 (res 10 10.0)) with
  | Some t6, Some t10 -> Alcotest.(check bool) "bigger containers help BHJ" true (t10 < t6)
  | _ -> Alcotest.fail "BHJ should be feasible at both"

let test_fig4a_switch_moves_with_container_size () =
  (* Paper: switch at the 3.45 GB OOM cliff with 3 GB containers, and at
     ~6.4 GB (cost crossover) with 9 GB containers. *)
  let sw gb =
    Raqo_workload.Switch_points.find hive ~big_gb:77.0 ~resources:(res 10 gb) ~lo:0.5
      ~hi:12.0 ()
  in
  (match sw 3.0 with
  | Some s -> Alcotest.(check bool) (Printf.sprintf "3 GB switch ~3.45 (got %.2f)" s) true
                (s > 3.2 && s < 3.7)
  | None -> Alcotest.fail "switch exists at 3 GB");
  match sw 9.0 with
  | Some s ->
      Alcotest.(check bool) (Printf.sprintf "9 GB switch ~6.4 (got %.2f)" s) true
        (s > 5.8 && s < 7.2)
  | None -> Alcotest.fail "switch exists at 9 GB"

let test_default_impl_rule () =
  (* The stock 10 MB rule: BHJ only for tiny build sides. *)
  Alcotest.(check bool) "9 MB -> BHJ" true
    (Join_impl.equal (Operators.default_impl hive ~small_gb:0.009) Join_impl.Bhj);
  Alcotest.(check bool) "100 MB -> SMJ" true
    (Join_impl.equal (Operators.default_impl hive ~small_gb:0.1) Join_impl.Smj)

let test_best_impl_picks_minimum () =
  let r = res 10 10.0 in
  match Operators.best_impl hive ~small_gb:5.1 ~big_gb:77.0 ~resources:r with
  | Some (impl, t) ->
      Alcotest.(check bool) "BHJ best at 10 GB" true (Join_impl.equal impl Join_impl.Bhj);
      (match bhj ~s:5.1 ~b:77.0 r with
      | Some b -> Alcotest.(check (float 1e-9)) "time matches" b t
      | None -> Alcotest.fail "feasible")
  | None -> Alcotest.fail "some impl feasible"

let test_best_impl_none_when_impossible () =
  (* Both infeasible cannot happen (SMJ always runs), so best_impl is
     always Some. *)
  match Operators.best_impl hive ~small_gb:50.0 ~big_gb:77.0 ~resources:(res 1 1.0) with
  | Some (impl, _) -> Alcotest.(check bool) "falls back to SMJ" true (Join_impl.equal impl Join_impl.Smj)
  | None -> Alcotest.fail "SMJ always feasible"

let test_join_time_symmetric_in_sides () =
  (* Engines build on the smaller side regardless of argument order. *)
  let r = res 10 8.0 in
  let a = time Join_impl.Bhj ~s:5.0 ~b:77.0 r in
  let b = time Join_impl.Bhj ~s:77.0 ~b:5.0 r in
  Alcotest.(check bool) "order irrelevant" true (a = b)

let test_join_time_rejects_nonpositive () =
  Alcotest.check_raises "size" (Invalid_argument "Operators.join_time: nonpositive size")
    (fun () -> ignore (time Join_impl.Smj ~s:0.0 ~b:1.0 (res 1 1.0)))

let test_reducers_default_near_optimal () =
  (* Fixing the reducer count at the auto-derived value matches Auto. *)
  let r = res 10 3.0 in
  let auto = smj ~s:3.4 ~b:77.0 r in
  let ideal = int_of_float (ceil ((3.4 +. 77.0) /. 0.25)) in
  match
    Operators.join_time ~reducers:(Operators.Fixed ideal) hive Join_impl.Smj ~small_gb:3.4
      ~big_gb:77.0 ~resources:r
  with
  | Some fixed -> Alcotest.(check bool) "close to auto" true (Float.abs (fixed -. auto) /. auto < 0.02)
  | None -> Alcotest.fail "feasible"

let test_reducers_missized_costs_more () =
  let r = res 10 3.0 in
  let auto = smj ~s:3.4 ~b:77.0 r in
  match
    Operators.join_time ~reducers:(Operators.Fixed 2) hive Join_impl.Smj ~small_gb:3.4
      ~big_gb:77.0 ~resources:r
  with
  | Some few -> Alcotest.(check bool) "too few reducers hurt" true (few > auto)
  | None -> Alcotest.fail "feasible"

let test_spark_profile_differs () =
  let spark = Engine.spark in
  let r = res 10 3.0 in
  let h = smj ~s:3.4 ~b:77.0 r in
  match Operators.join_time spark Join_impl.Smj ~small_gb:3.4 ~big_gb:77.0 ~resources:r with
  | Some s -> Alcotest.(check bool) "spark faster shuffle" true (s < h)
  | None -> Alcotest.fail "feasible"

let test_spark_larger_memory_headroom () =
  (* Spark's usable fraction admits bigger broadcasts per GB. *)
  let r = res 10 3.0 in
  Alcotest.(check bool) "4 GB in 3 GB executor feasible on spark" true
    (Operators.join_time Engine.spark Join_impl.Bhj ~small_gb:4.0 ~big_gb:77.0 ~resources:r
    <> None);
  Alcotest.(check bool) "4 GB in 3 GB container OOM on hive" true
    (Operators.join_time Engine.hive Join_impl.Bhj ~small_gb:4.0 ~big_gb:77.0 ~resources:r
    = None)

let test_scan_time_scales () =
  let t10 = Operators.scan_time hive ~gb:10.0 ~resources:(res 10 2.0) in
  let t20 = Operators.scan_time hive ~gb:20.0 ~resources:(res 10 2.0) in
  Alcotest.(check bool) "more data, more time" true (t20 > t10)

(* ------------------------------------------------------------- Simulate *)

let schema () = Tpch.schema ()

let joint_plan impl r =
  Join_tree.Join ((impl, r), Join_tree.Scan "orders", Join_tree.Scan "lineitem")

let test_simulate_single_join () =
  let s = schema () in
  let r = res 10 10.0 in
  match Simulate.run_joint hive s (joint_plan Join_impl.Smj r) with
  | Ok run ->
      Alcotest.(check bool) "positive time" true (run.Simulate.seconds > 0.0);
      let expected_gbs = Resources.gb_seconds r run.Simulate.seconds in
      Alcotest.(check (float 1e-6)) "usage = mem x time" expected_gbs run.Simulate.gb_seconds
  | Error e -> Alcotest.fail e

let test_simulate_oom_error () =
  let s = schema () in
  (* orders at SF100 is ~16.5 GB: broadcasting it into 2 GB containers OOMs. *)
  match Simulate.run_joint hive s (joint_plan Join_impl.Bhj (res 10 2.0)) with
  | Ok _ -> Alcotest.fail "expected OOM"
  | Error msg -> Alcotest.(check bool) "mentions OOM" true
                   (String.length msg > 0 && String.sub msg 0 3 = "BHJ")

let test_simulate_plain_equals_joint_at_same_resources () =
  let s = schema () in
  let r = res 20 4.0 in
  let plain = Join_tree.Join (Join_impl.Smj, Join_tree.Scan "orders", Join_tree.Scan "lineitem") in
  match (Simulate.run_plain hive s ~resources:r plain, Simulate.run_joint hive s (joint_plan Join_impl.Smj r)) with
  | Ok a, Ok b ->
      Alcotest.(check (float 1e-9)) "same seconds" a.Simulate.seconds b.Simulate.seconds
  | _ -> Alcotest.fail "both should run"

let test_simulate_multi_join_additive () =
  let s = schema () in
  let r = res 20 6.0 in
  let two =
    Join_tree.Join
      ( (Join_impl.Smj, r),
        Join_tree.Join ((Join_impl.Smj, r), Join_tree.Scan "orders", Join_tree.Scan "lineitem"),
        Join_tree.Scan "customer" )
  in
  match (Simulate.run_joint hive s two, Simulate.run_joint hive s (joint_plan Join_impl.Smj r)) with
  | Ok both, Ok single ->
      Alcotest.(check bool) "two joins cost more than one" true
        (both.Simulate.seconds > single.Simulate.seconds)
  | _ -> Alcotest.fail "both should run"

let test_simulate_rejects_invalid_plan () =
  let s = schema () in
  let bad =
    Join_tree.Join
      ((Join_impl.Smj, res 1 1.0), Join_tree.Scan "orders", Join_tree.Scan "orders")
  in
  Alcotest.check_raises "duplicate relation"
    (Invalid_argument "Simulate: plan references a relation twice") (fun () ->
      ignore (Simulate.run_joint hive s bad))

let test_simulate_money_positive () =
  let s = schema () in
  match Simulate.run_joint hive s (joint_plan Join_impl.Smj (res 10 5.0)) with
  | Ok run ->
      Alcotest.(check bool) "money > 0" true (Simulate.money run > 0.0);
      Alcotest.(check (float 1e-9)) "tb_seconds" (run.Simulate.gb_seconds /. 1024.0)
        (Simulate.tb_seconds run)
  | Error e -> Alcotest.fail e

let test_spark_container_reuse () =
  (* Spark pays stage startup once per plan; Hive per stage. The two-join
     plan therefore saves exactly one startup + launch overhead on Spark
     relative to the sum of its stages. *)
  let s = schema () in
  let r = res 20 6.0 in
  let single rels = Join_tree.Join ((Join_impl.Smj, r), Join_tree.Scan (fst rels), Join_tree.Scan (snd rels)) in
  let two =
    Join_tree.Join ((Join_impl.Smj, r), single ("orders", "lineitem"), Join_tree.Scan "customer")
  in
  let spark = Engine.spark in
  match
    ( Simulate.run_joint spark s two,
      Simulate.run_joint spark s (single ("orders", "lineitem")) )
  with
  | Ok both, Ok first ->
      let second_join_standalone =
        match
          Operators.join_time spark Join_impl.Smj
            ~small_gb:(Raqo_catalog.Schema.join_size_gb s [ "customer" ])
            ~big_gb:(Raqo_catalog.Schema.join_size_gb s [ "orders"; "lineitem" ])
            ~resources:r
        with
        | Some t -> t
        | None -> Alcotest.fail "feasible"
      in
      let saved =
        first.Simulate.seconds +. second_join_standalone -. both.Simulate.seconds
      in
      let expected = spark.Engine.startup_s +. (spark.Engine.task_overhead_s *. 20.0) in
      Alcotest.(check (float 1e-6)) "one startup saved" expected saved
  | _ -> Alcotest.fail "both should run"

let test_hive_no_container_reuse () =
  (* Hive-on-Tez pays per stage: the plan time is exactly the stage sum. *)
  let s = schema () in
  let r = res 20 6.0 in
  let two =
    Join_tree.Join
      ( (Join_impl.Smj, r),
        Join_tree.Join ((Join_impl.Smj, r), Join_tree.Scan "orders", Join_tree.Scan "lineitem"),
        Join_tree.Scan "customer" )
  in
  match Simulate.run_joint hive s two with
  | Ok both ->
      let stage small big =
        match Operators.join_time hive Join_impl.Smj ~small_gb:small ~big_gb:big ~resources:r with
        | Some t -> t
        | None -> Alcotest.fail "feasible"
      in
      let j1 =
        stage
          (Raqo_catalog.Schema.join_size_gb s [ "orders" ])
          (Raqo_catalog.Schema.join_size_gb s [ "lineitem" ])
      in
      let j2 =
        stage
          (Raqo_catalog.Schema.join_size_gb s [ "customer" ])
          (Raqo_catalog.Schema.join_size_gb s [ "orders"; "lineitem" ])
      in
      Alcotest.(check (float 1e-6)) "sum of stages" (j1 +. j2) both.Simulate.seconds
  | Error e -> Alcotest.fail e

let test_join_inputs_ordered () =
  let s = schema () in
  let small, big = Simulate.join_inputs s ~left:[ "lineitem" ] ~right:[ "orders" ] in
  Alcotest.(check bool) "small <= big" true (small <= big);
  let small2, big2 = Simulate.join_inputs s ~left:[ "orders" ] ~right:[ "lineitem" ] in
  Alcotest.(check (float 1e-9)) "symmetric small" small small2;
  Alcotest.(check (float 1e-9)) "symmetric big" big big2

(* Property: SMJ monotone non-increasing in container count (fixed data,
   fixed memory) — more parallelism never hurts the shuffle path in the
   relevant range (task overhead stays second-order below ~100). *)
let prop_smj_monotone_in_containers =
  QCheck.Test.make ~name:"SMJ improves (weakly) with containers" ~count:100
    QCheck.(pair (float_range 0.5 12.0) (int_range 2 60))
    (fun (s, nc) ->
      let a = smj ~s ~b:77.0 (res nc 3.0) in
      let b = smj ~s ~b:77.0 (res (nc + 5) 3.0) in
      b <= a +. 1e-6)

let prop_bhj_monotone_in_memory =
  QCheck.Test.make ~name:"BHJ improves with container memory until the cliff" ~count:100
    QCheck.(pair (float_range 0.5 6.0) (int_range 2 9))
    (fun (s, gb_int) ->
      let gb = float_of_int gb_int in
      match (bhj ~s ~b:77.0 (res 10 gb), bhj ~s ~b:77.0 (res 10 (gb +. 1.0))) with
      | Some a, Some b -> b <= a +. 1e-6
      | None, (Some _ | None) -> true (* OOM at smaller memory: nothing to compare *)
      | Some _, None -> false (* more memory can never newly OOM *))

let prop_costs_positive =
  QCheck.Test.make ~name:"simulated times are positive and finite" ~count:200
    QCheck.(triple (float_range 0.2 12.0) (int_range 1 100) (float_range 1.0 10.0))
    (fun (s, nc, gb) ->
      List.for_all
        (fun impl ->
          match time impl ~s ~b:77.0 (res nc gb) with
          | Some t -> Float.is_finite t && t > 0.0
          | None -> true)
        Join_impl.all)

(* ------------------------------------------------------------- Task_sim *)

module Task_sim = Raqo_execsim.Task_sim
module Rng = Raqo_util.Rng

let test_task_sim_noise_free_matches_analytical () =
  (* Zero noise and task count divisible by containers: the wave schedule is
     perfectly balanced, so the task-level time equals the closed form. *)
  let rng = Rng.create 1 in
  let r = res 10 3.0 in
  (* (3.4 + 77) / 0.25 = 321.6 -> 322 tasks; pick sizes that divide: use
     data = 80 GB -> 320 tasks over 10 containers = 32 waves exactly. *)
  match Task_sim.simulate ~noise_sigma:0.0 rng hive Join_impl.Smj ~small_gb:3.0 ~big_gb:77.0 ~resources:r with
  | Some report ->
      Alcotest.(check (float 1e-6)) "matches analytical" report.Task_sim.analytical_seconds
        report.Task_sim.seconds;
      Alcotest.(check int) "waves" 32 report.Task_sim.waves;
      Alcotest.(check (float 1e-9)) "no stragglers" 1.0 report.Task_sim.straggler_factor
  | None -> Alcotest.fail "feasible"

let test_task_sim_noise_adds_stragglers () =
  let rng = Rng.create 2 in
  let r = res 10 3.0 in
  match Task_sim.simulate ~noise_sigma:0.3 rng hive Join_impl.Smj ~small_gb:3.0 ~big_gb:77.0 ~resources:r with
  | Some report ->
      Alcotest.(check bool) "stragglers slow the stage" true
        (report.Task_sim.seconds > report.Task_sim.analytical_seconds);
      Alcotest.(check bool) "factor > 1" true (report.Task_sim.straggler_factor > 1.0)
  | None -> Alcotest.fail "feasible"

let test_task_sim_noise_penalty_is_bounded () =
  (* Hundreds of tasks over tens of containers: list scheduling amortizes
     the noise; the straggler penalty stays modest at sigma = 0.15. *)
  let rng = Rng.create 3 in
  let r = res 20 3.0 in
  match Task_sim.simulate rng hive Join_impl.Smj ~small_gb:3.0 ~big_gb:77.0 ~resources:r with
  | Some report ->
      Alcotest.(check bool)
        (Printf.sprintf "penalty %.3f < 1.15" report.Task_sim.straggler_factor)
        true
        (report.Task_sim.straggler_factor < 1.15)
  | None -> Alcotest.fail "feasible"

let test_task_sim_respects_oom () =
  let rng = Rng.create 4 in
  Alcotest.(check bool) "BHJ OOM propagates" true
    (Task_sim.simulate rng hive Join_impl.Bhj ~small_gb:5.1 ~big_gb:77.0 ~resources:(res 10 3.0)
    = None)

let test_task_sim_deterministic_per_seed () =
  let run () =
    match
      Task_sim.simulate (Rng.create 9) hive Join_impl.Bhj ~small_gb:3.0 ~big_gb:77.0
        ~resources:(res 10 9.0)
    with
    | Some report -> report.Task_sim.seconds
    | None -> Alcotest.fail "feasible"
  in
  Alcotest.(check (float 1e-12)) "same seed, same time" (run ()) (run ())

let test_task_sim_rejects_negative_noise () =
  Alcotest.check_raises "noise" (Invalid_argument "Task_sim.simulate: negative noise")
    (fun () ->
      ignore
        (Task_sim.simulate ~noise_sigma:(-0.1) (Rng.create 1) hive Join_impl.Smj ~small_gb:1.0
           ~big_gb:77.0 ~resources:(res 10 3.0)))

let test_task_sim_single_container () =
  (* One container degenerates to fully sequential waves: every task is its
     own wave, and with zero noise the makespan is exactly the summed work,
     so the task-level time still reproduces the closed form. *)
  let rng = Rng.create 6 in
  match
    Task_sim.simulate ~noise_sigma:0.0 rng hive Join_impl.Smj ~small_gb:3.0 ~big_gb:77.0
      ~resources:(res 1 6.0)
  with
  | Some report ->
      Alcotest.(check int) "every task is a wave" report.Task_sim.tasks
        report.Task_sim.waves;
      Alcotest.(check (float 1e-6)) "matches analytical" report.Task_sim.analytical_seconds
        report.Task_sim.seconds;
      Alcotest.(check (float 1e-9)) "no stragglers possible" 1.0
        report.Task_sim.straggler_factor
  | None -> Alcotest.fail "feasible"

let test_simulate_floors_zero_row_intermediates () =
  (* A near-zero-selectivity edge annihilates the intermediate (1e12 pairs x
     1e-30 ~ 0 rows), but the cardinality model floors every join output at
     one row, so downstream stages see a positive size and the whole-plan
     simulation stays finite — the adaptive executor relies on this when a
     mid-flight observation collapses. *)
  let rel name rows = Raqo_catalog.Relation.make ~name ~rows ~row_bytes:100.0 in
  let edge l r s = { Raqo_catalog.Join_graph.left = l; right = r; selectivity = s } in
  let s =
    Raqo_catalog.Schema.make
      [ rel "x" 1e6; rel "y" 1e6; rel "z" 1e6 ]
      (Raqo_catalog.Join_graph.make [ edge "x" "y" 1e-30; edge "y" "z" 1e-6 ])
  in
  Alcotest.(check (float 1e-9)) "floored at one row" 1.0
    (Raqo_catalog.Schema.join_rows s [ "x"; "y" ]);
  let r = res 10 3.0 in
  let plan =
    Join_tree.Join
      ( (Join_impl.Smj, r),
        Join_tree.Join ((Join_impl.Smj, r), Join_tree.Scan "x", Join_tree.Scan "y"),
        Join_tree.Scan "z" )
  in
  match Simulate.run_joint hive s plan with
  | Ok run ->
      Alcotest.(check bool) "finite positive time" true
        (Float.is_finite run.Simulate.seconds && run.Simulate.seconds > 0.0)
  | Error e -> Alcotest.failf "zero-row intermediate broke the simulation: %s" e

let test_spark_amortization_uses_stage_containers () =
  (* Container-reuse amortization subtracts the *current* stage's launch
     overhead (task_overhead x its own container count), not the first
     stage's — the exact semantics the adaptive executor replicates when a
     re-planned stage runs under different resources than stage one. *)
  let s = schema () in
  let r1 = res 20 6.0 and r2 = res 8 6.0 in
  let spark = Engine.spark in
  let plan =
    Join_tree.Join
      ( (Join_impl.Smj, r2),
        Join_tree.Join ((Join_impl.Smj, r1), Join_tree.Scan "orders", Join_tree.Scan "lineitem"),
        Join_tree.Scan "customer" )
  in
  match Simulate.run_joint spark s plan with
  | Ok both ->
      let stage small big r =
        match Operators.join_time spark Join_impl.Smj ~small_gb:small ~big_gb:big ~resources:r with
        | Some t -> t
        | None -> Alcotest.fail "feasible"
      in
      let gb names = Raqo_catalog.Schema.join_size_gb s names in
      let j1 = stage (gb [ "orders" ]) (gb [ "lineitem" ]) r1 in
      let j2 = stage (gb [ "customer" ]) (gb [ "orders"; "lineitem" ]) r2 in
      let amortized =
        j2 -. spark.Engine.startup_s -. (spark.Engine.task_overhead_s *. 8.0)
      in
      Alcotest.(check (float 1e-6)) "second stage amortizes its own launch"
        (j1 +. amortized) both.Simulate.seconds
  | Error e -> Alcotest.fail e

let prop_task_sim_never_beats_balanced =
  (* List scheduling can never beat a perfectly balanced split of the drawn
     task durations. *)
  QCheck.Test.make ~name:"straggler factor >= 1" ~count:50
    QCheck.(triple (int_range 1 1000) (int_range 2 40) (int_range 2 10))
    (fun (seed, nc, gb) ->
      let rng = Rng.create seed in
      match
        Task_sim.simulate rng hive Join_impl.Smj ~small_gb:2.0 ~big_gb:77.0
          ~resources:(res nc (float_of_int gb))
      with
      | Some report -> report.Task_sim.straggler_factor >= 1.0 -. 1e-9
      | None -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_execsim"
    [
      ( "oom",
        [
          Alcotest.test_case "BHJ OOM below 5 GB for 5.1 GB build" `Quick
            test_bhj_oom_below_5gb_for_paper_join;
          Alcotest.test_case "3.4 GB fits 3 GB container" `Quick test_bhj_feasible_34_in_3gb;
          Alcotest.test_case "feasibility predicate consistent" `Quick
            test_bhj_feasible_predicate_matches_join_time;
          Alcotest.test_case "SMJ never OOMs" `Quick test_smj_never_ooms;
        ] );
      ( "switch_points",
        [
          Alcotest.test_case "Fig 3a: switch at 7 GB containers" `Quick test_fig3a_switch_at_7gb;
          Alcotest.test_case "Fig 3a: SMJ stable in container size" `Quick
            test_fig3a_smj_stable_in_container_size;
          Alcotest.test_case "Fig 3b: crossover in container count" `Quick
            test_fig3b_crossover_in_containers;
          Alcotest.test_case "SMJ improves with parallelism" `Quick
            test_smj_improves_with_parallelism;
          Alcotest.test_case "BHJ improves with memory" `Quick test_bhj_improves_with_memory;
          Alcotest.test_case "Fig 4a: switch moves with container size" `Quick
            test_fig4a_switch_moves_with_container_size;
        ] );
      ( "operators",
        [
          Alcotest.test_case "stock 10 MB rule" `Quick test_default_impl_rule;
          Alcotest.test_case "best_impl picks minimum" `Quick test_best_impl_picks_minimum;
          Alcotest.test_case "best_impl falls back to SMJ" `Quick
            test_best_impl_none_when_impossible;
          Alcotest.test_case "side order irrelevant" `Quick test_join_time_symmetric_in_sides;
          Alcotest.test_case "rejects nonpositive sizes" `Quick test_join_time_rejects_nonpositive;
          Alcotest.test_case "auto reducers near optimal" `Quick
            test_reducers_default_near_optimal;
          Alcotest.test_case "mis-sized reducers cost more" `Quick
            test_reducers_missized_costs_more;
          Alcotest.test_case "spark profile is faster" `Quick test_spark_profile_differs;
          Alcotest.test_case "spark has more memory headroom" `Quick
            test_spark_larger_memory_headroom;
          Alcotest.test_case "scan scales with data" `Quick test_scan_time_scales;
        ]
        @ qsuite [ prop_smj_monotone_in_containers; prop_bhj_monotone_in_memory; prop_costs_positive ]
      );
      ( "task_sim",
        [
          Alcotest.test_case "noise-free = analytical" `Quick
            test_task_sim_noise_free_matches_analytical;
          Alcotest.test_case "noise adds stragglers" `Quick test_task_sim_noise_adds_stragglers;
          Alcotest.test_case "penalty bounded at default noise" `Quick
            test_task_sim_noise_penalty_is_bounded;
          Alcotest.test_case "OOM propagates" `Quick test_task_sim_respects_oom;
          Alcotest.test_case "deterministic per seed" `Quick test_task_sim_deterministic_per_seed;
          Alcotest.test_case "rejects negative noise" `Quick test_task_sim_rejects_negative_noise;
          Alcotest.test_case "single container degenerates to waves" `Quick
            test_task_sim_single_container;
        ]
        @ qsuite [ prop_task_sim_never_beats_balanced ] );
      ( "simulate",
        [
          Alcotest.test_case "single join runs" `Quick test_simulate_single_join;
          Alcotest.test_case "OOM surfaces as Error" `Quick test_simulate_oom_error;
          Alcotest.test_case "plain = joint at same resources" `Quick
            test_simulate_plain_equals_joint_at_same_resources;
          Alcotest.test_case "multi-join is additive" `Quick test_simulate_multi_join_additive;
          Alcotest.test_case "rejects invalid plans" `Quick test_simulate_rejects_invalid_plan;
          Alcotest.test_case "money and TB·s" `Quick test_simulate_money_positive;
          Alcotest.test_case "spark reuses containers across stages" `Quick
            test_spark_container_reuse;
          Alcotest.test_case "hive pays per stage" `Quick test_hive_no_container_reuse;
          Alcotest.test_case "zero-row intermediates floored" `Quick
            test_simulate_floors_zero_row_intermediates;
          Alcotest.test_case "spark amortization keys on stage containers" `Quick
            test_spark_amortization_uses_stage_containers;
          Alcotest.test_case "join_inputs ordering" `Quick test_join_inputs_ordered;
        ] );
    ]
