(* The shared-memo parallel DP: the memo table's slot state machine,
   bit-identity of the parallel sweep against sequential DPsub at every pool
   size, fault recovery (no stranded claims, pool survives), and the
   allocation probes behind the perf claims. *)

module Memo = Raqo_memo.Memo
module Pool = Raqo_par.Pool
module Interned = Raqo_catalog.Interned
module Schema = Raqo_catalog.Schema
module Tpch = Raqo_catalog.Tpch
module Random_schema = Raqo_catalog.Random_schema
module Dpsub = Raqo_planner.Dpsub
module Coster = Raqo_planner.Coster
module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions
module Resource_planner = Raqo_resource.Resource_planner
module Rng = Raqo_util.Rng
module Obs = Raqo_obs.Obs
module Metrics = Raqo_obs.Metrics

let model = Raqo.Models.hive ()
let tpch = Tpch.schema ()
let fixed_res = Resources.make ~containers:10 ~container_gb:5.0
let pool_sizes = [ 1; 2; 4 ]

(* ----------------------------------------------------- slot state machine *)

let test_slot_state_machine () =
  let m = Memo.create ~bits:4 in
  Alcotest.(check int) "bits round-trips" 4 (Memo.bits m);
  Alcotest.(check bool) "fresh slot is empty" true (Memo.get m 5 = Memo.Empty);
  Alcotest.(check (option int)) "find on empty" None (Memo.find m 5);
  Alcotest.(check bool) "first claim wins" true (Memo.try_claim m 5);
  Alcotest.(check bool) "second claim loses" false (Memo.try_claim m 5);
  Alcotest.(check (option int)) "claimed is not published" None (Memo.find m 5);
  Memo.publish m 5 42;
  Alcotest.(check (option int)) "published value" (Some 42) (Memo.find m 5);
  Alcotest.(check bool) "get sees the published block" true (Memo.get m 5 = Memo.Published 42);
  Alcotest.(check bool) "claim on published loses" false (Memo.try_claim m 5);
  Memo.release m 5;
  Alcotest.(check (option int)) "release is a no-op on published" (Some 42) (Memo.find m 5);
  Alcotest.(check bool) "claim another slot" true (Memo.try_claim m 3);
  Alcotest.(check int) "claimed count" 1 (Memo.claimed_count m);
  Alcotest.(check int) "published count" 1 (Memo.published_count m);
  Memo.release m 3;
  Alcotest.(check int) "release empties the claim" 0 (Memo.claimed_count m);
  Alcotest.(check bool) "released slot is reclaimable" true (Memo.try_claim m 3)

let test_create_validation () =
  Alcotest.check_raises "negative bits" (Invalid_argument "Memo.create: bits out of range")
    (fun () -> ignore (Memo.create ~bits:(-1) : int Memo.t));
  Alcotest.check_raises "oversized table" (Invalid_argument "Memo.create: bits out of range")
    (fun () -> ignore (Memo.create ~bits:26 : int Memo.t));
  let one_slot : int Memo.t = Memo.create ~bits:0 in
  Alcotest.(check int) "bits 0 is a one-slot table" 0 (Memo.bits one_slot)

(* ------------------------------------------------- parallel == sequential *)

(* Full structural equality — plan shape, implementations, resource
   assignments, and the raw cost float — is the bit-identity contract. *)
let check_par_eq_seq msg seq par =
  Alcotest.(check bool) msg true (par = seq)

let test_par_matches_seq_fixed () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let s = Random_schema.generate rng ~tables:9 in
      let ctx = Interned.make s (Schema.relation_names s) in
      let coster () = Coster.fixed_masked model ctx fixed_res in
      let seq = Dpsub.optimize_masked (coster ()) ctx in
      List.iter
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              check_par_eq_seq
                (Printf.sprintf "fixed coster, seed %d at %d jobs" seed jobs)
                seq
                (Dpsub.optimize_par_masked ~coster pool ctx)))
        pool_sizes)
    [ 1; 2; 3; 4; 5 ]

let test_par_matches_seq_memoized () =
  let rng = Rng.create 99 in
  let s = Random_schema.generate rng ~tables:9 in
  let ctx = Interned.make s (Schema.relation_names s) in
  let coster () = Coster.memoize_masked ctx (Coster.fixed_masked model ctx fixed_res) in
  let seq = Dpsub.optimize_masked (coster ()) ctx in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check_par_eq_seq
            (Printf.sprintf "memoized coster at %d jobs" jobs)
            seq
            (Dpsub.optimize_par_masked ~coster pool ctx)))
    pool_sizes

let test_par_matches_seq_raqo () =
  (* The full joint-optimization coster: each domain plans resources against
     a fork of one shared planner — same config, shared counters, private
     exact-lookup cache and kernel scratch — so answers equal a fresh
     search's. *)
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let s = Random_schema.generate rng ~tables:6 in
      let ctx = Interned.make s (Schema.relation_names s) in
      let rp = Resource_planner.create Conditions.default in
      let seq = Dpsub.optimize_masked (Coster.raqo_masked model ctx rp) ctx in
      List.iter
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              check_par_eq_seq
                (Printf.sprintf "raqo coster, seed %d at %d jobs" seed jobs)
                seq
                (Dpsub.optimize_par_masked
                   ~coster:(fun () -> Coster.raqo_masked model ctx (Resource_planner.fork rp))
                   pool ctx)))
        pool_sizes)
    [ 7; 8 ]

let test_par_matches_string_api_on_tpch () =
  (* Through the of_strings adapter, against the public string entry point:
     the path Cost_based.optimize_par actually exercises. *)
  let ctx = Interned.make tpch Tpch.all in
  let base () = Coster.fixed model tpch fixed_res in
  let seq = Dpsub.optimize (base ()) tpch Tpch.all in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check_par_eq_seq
            (Printf.sprintf "TPC-H all at %d jobs" jobs)
            seq
            (Dpsub.optimize_par_masked
               ~coster:(fun () -> Coster.of_strings ctx (base ()))
               pool ctx)))
    pool_sizes

(* -------------------------------------------------------------- edge cases *)

let test_single_relation () =
  let ctx = Interned.make tpch [ "orders" ] in
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Dpsub.optimize_par_masked
          ~coster:(fun () -> Coster.fixed_masked model ctx fixed_res)
          pool ctx
      with
      | Some (Raqo_plan.Join_tree.Scan "orders", cost) ->
          Alcotest.(check (float 1e-9)) "bare scan is free" 0.0 cost
      | _ -> Alcotest.fail "bare scan expected")

let test_disconnected_is_none () =
  (* customer and part share no join edge in TPC-H: the full mask is never
     connected, no level enumerates it, and both arms agree on None. *)
  let ctx = Interned.make tpch [ "customer"; "part" ] in
  Alcotest.(check bool) "query is disconnected" false
    (Interned.connected ctx (Interned.full_mask ctx));
  let coster () = Coster.fixed_masked model ctx fixed_res in
  Alcotest.(check bool) "sequential finds no plan" true
    (Dpsub.optimize_masked (coster ()) ctx = None);
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check bool) "parallel agrees: no plan" true
        (Dpsub.optimize_par_masked ~coster pool ctx = None))

let test_mismatched_memo_rejected () =
  let ctx = Interned.make tpch Tpch.all in
  let memo = Memo.create ~bits:4 in
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.check_raises "wrong-sized memo"
        (Invalid_argument "Dpsub.optimize_par_masked: memo sized for a different query")
        (fun () ->
          ignore
            (Dpsub.optimize_par_masked ~memo
               ~coster:(fun () -> Coster.fixed_masked model ctx fixed_res)
               pool ctx)))

(* ---------------------------------------------------------- fault recovery *)

exception Hiccup

let test_fault_strands_no_claims () =
  (* A coster raising mid-level must propagate out of the sweep, leave zero
     claimed-but-unpublished entries behind, and leave the pool usable. *)
  let ctx = Interned.make tpch Tpch.all in
  let n = Interned.n ctx in
  let calls = Atomic.make 0 in
  let faulty () =
    let inner = Coster.fixed_masked model ctx fixed_res in
    {
      Coster.best_join_masked =
        (fun ~left ~right ->
          (* Call 25 lands mid-way through level 3 on this query. *)
          if Atomic.fetch_and_add calls 1 = 25 then raise Hiccup;
          inner.Coster.best_join_masked ~left ~right);
      masked_name = "hiccup";
    }
  in
  let clean () = Coster.fixed_masked model ctx fixed_res in
  let seq = Dpsub.optimize_masked (clean ()) ctx in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Atomic.set calls 0;
          let memo = Memo.create ~bits:n in
          (match Dpsub.optimize_par_masked ~memo ~coster:faulty pool ctx with
          | _ -> Alcotest.fail "expected Hiccup"
          | exception Hiccup -> ());
          Alcotest.(check int)
            (Printf.sprintf "no stranded claims at %d jobs" jobs)
            0 (Memo.claimed_count memo);
          Alcotest.(check bool)
            (Printf.sprintf "completed levels survive at %d jobs" jobs)
            true
            (Memo.published_count memo >= n);
          check_par_eq_seq
            (Printf.sprintf "pool still usable after the fault at %d jobs" jobs)
            seq
            (Dpsub.optimize_par_masked ~coster:clean pool ctx)))
    pool_sizes

(* --------------------------------------------------------- instrumentation *)

let counter name = Metrics.Counter.value (Metrics.counter name)

let test_counters_with_obs_on () =
  let ctx = Interned.make tpch Tpch.all in
  let n = Interned.n ctx in
  let before name = counter name in
  let claims0 = before "raqo_memo_claims_total"
  and publishes0 = before "raqo_memo_publishes_total"
  and hits0 = before "raqo_memo_hits_total"
  and conflicts0 = before "raqo_memo_conflicts_total" in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      Pool.with_pool ~jobs:2 (fun pool ->
          ignore
            (Dpsub.optimize_par_masked
               ~coster:(fun () -> Coster.fixed_masked model ctx fixed_res)
               pool ctx)));
  let claims = counter "raqo_memo_claims_total" - claims0 in
  let publishes = counter "raqo_memo_publishes_total" - publishes0 in
  Alcotest.(check bool) "subproblems were claimed" true (claims > 0);
  (* Every claim publishes, plus the n singleton pre-seeds that skip claims. *)
  Alcotest.(check int) "publishes = claims + singletons" (claims + n) publishes;
  Alcotest.(check bool) "lower levels were read" true
    (counter "raqo_memo_hits_total" - hits0 > 0);
  (* The atomic cursor hands each subset to exactly one worker, so the claim
     CAS never races. *)
  Alcotest.(check int) "no claim conflicts" 0
    (counter "raqo_memo_conflicts_total" - conflicts0)

(* ------------------------------------------------------- allocation probes *)

let test_memo_ops_allocation_free () =
  (* With observability off, a warm get/claim/release loop over the table
     must allocate nothing: reads return the writer's block, and every
     transition is a plain CAS between constant constructors. *)
  Obs.set_enabled false;
  let m = Memo.create ~bits:10 in
  Memo.publish m 5 42;
  ignore (Memo.try_claim m 6);
  let sink = ref 0 in
  let loop () =
    for mask = 0 to 1023 do
      match Memo.get m mask with
      | Memo.Published v -> sink := !sink + v
      | Memo.Empty | Memo.Claimed -> ()
    done;
    ignore (Memo.try_claim m 5);
    (* conflict path *)
    Memo.release m 6;
    ignore (Memo.try_claim m 6)
  in
  loop ();
  let w0 = Gc.minor_words () in
  loop ();
  let delta = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "warm memo loop allocated %.0f minor words" delta)
    true (delta <= 64.0);
  Alcotest.(check int) "loop really ran" 84 !sink

let test_kernel_sweep_allocation_free_in_pool () =
  (* The per-domain half of the acceptance probe: a warm compiled-kernel
     sweep stays allocation-free when it runs on a pool worker, exactly as
     the parallel DP's forked resource planners run it. Gc.minor_words is
     per-domain in OCaml 5, so the probe must execute inside the task. *)
  Obs.set_enabled false;
  let floored = Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper in
  let c =
    Conditions.make ~min_containers:1 ~max_containers:60 ~container_step:1 ~min_gb:1.0
      ~max_gb:60.0 ~gb_step:1.0 ()
  in
  let probe () =
    let k =
      Option.get (Raqo_cost.Kernel.make floored Raqo_plan.Join_impl.Bhj ~small_gb:12.5)
    in
    let s = Raqo_cost.Kernel.create_scratch () in
    Raqo_cost.Kernel.ensure s (Conditions.n_configs c);
    let buf = Raqo_cost.Kernel.buffer s in
    Raqo_cost.Kernel.sweep k c buf;
    let w0 = Gc.minor_words () in
    Raqo_cost.Kernel.sweep k c buf;
    Gc.minor_words () -. w0
  in
  Pool.with_pool ~jobs:2 (fun pool ->
      List.iter
        (fun delta ->
          Alcotest.(check bool)
            (Printf.sprintf "warm sweep on a worker allocated %.0f minor words" delta)
            true (delta <= 64.0))
        (Pool.parallel_map pool (fun () -> probe ()) [ (); () ]))

let () =
  Alcotest.run "raqo_memo"
    [
      ( "table",
        [
          Alcotest.test_case "slot state machine" `Quick test_slot_state_machine;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "parallel dp",
        [
          Alcotest.test_case "par == seq, fixed costers" `Quick test_par_matches_seq_fixed;
          Alcotest.test_case "par == seq, memoized costers" `Quick
            test_par_matches_seq_memoized;
          Alcotest.test_case "par == seq, raqo costers" `Quick test_par_matches_seq_raqo;
          Alcotest.test_case "par == string API on TPC-H" `Quick
            test_par_matches_string_api_on_tpch;
          Alcotest.test_case "single relation" `Quick test_single_relation;
          Alcotest.test_case "disconnected query" `Quick test_disconnected_is_none;
          Alcotest.test_case "mismatched memo rejected" `Quick test_mismatched_memo_rejected;
        ] );
      ( "faults",
        [ Alcotest.test_case "mid-level fault strands no claims" `Quick
            test_fault_strands_no_claims ] );
      ( "instrumentation",
        [ Alcotest.test_case "memo counters under obs" `Quick test_counters_with_obs_on ] );
      ( "allocation",
        [
          Alcotest.test_case "memo ops allocation-free" `Quick test_memo_ops_allocation_free;
          Alcotest.test_case "kernel sweep allocation-free on a worker" `Quick
            test_kernel_sweep_allocation_free_in_pool;
        ] );
    ]
