(* The observability subsystem: metric primitives and registry semantics,
   span rings (nesting, wraparound, cross-domain parenting under the pool),
   and the exporters (Chrome trace_event JSON, Prometheus round-trip). *)

module Obs = Raqo_obs.Obs
module Metrics = Raqo_obs.Metrics
module Trace = Raqo_obs.Trace
module Export = Raqo_obs.Export
module Pool = Raqo_par.Pool

(* Every test that records runs with the flag on and a clean slate; restore
   the disabled default so suites sharing the process stay unperturbed. *)
let with_obs f =
  Trace.clear ();
  Metrics.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled false;
      Trace.clear ())
    (fun () -> Obs.with_enabled true f)

(* --------------------------------------------------------------- metrics *)

let test_counter () =
  let c = Metrics.Counter.create () in
  Metrics.Counter.inc c;
  Metrics.Counter.add c 41;
  Alcotest.(check int) "accumulates" 42 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Metrics.Counter.value c)

let test_counter_parallel () =
  (* Sharded increments merge exactly once the domains have joined. *)
  let c = Metrics.Counter.create () in
  Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Pool.parallel_map pool
           (fun _ ->
             for _ = 1 to 1000 do
               Metrics.Counter.inc c
             done)
           [ 1; 2; 3; 4; 5; 6; 7; 8 ]));
  Alcotest.(check int) "8000 increments survive contention" 8000
    (Metrics.Counter.value c)

let test_histogram_buckets () =
  let h = Metrics.Histogram.create ~buckets:[| 1.0; 2.0; 5.0 |] () in
  (* Bucket edges are inclusive upper bounds (Prometheus [le]); anything
     above the last edge lands in the implicit +Inf bucket. *)
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.9; 5.0; 5.1; 100.0 ];
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 2; 2; 2 |]
    (Metrics.Histogram.counts h);
  Alcotest.(check (array int)) "cumulative le semantics" [| 2; 4; 6; 8 |]
    (Metrics.Histogram.cumulative h);
  Alcotest.(check int) "count" 8 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 120.0 (Metrics.Histogram.sum h);
  Metrics.Histogram.reset h;
  Alcotest.(check int) "reset" 0 (Metrics.Histogram.count h)

let test_histogram_validation () =
  Alcotest.check_raises "empty edges" (Invalid_argument "Histogram.create: empty buckets")
    (fun () -> ignore (Metrics.Histogram.create ~buckets:[||] ()));
  Alcotest.check_raises "non-increasing edges"
    (Invalid_argument "Histogram.create: bucket edges must be strictly increasing")
    (fun () -> ignore (Metrics.Histogram.create ~buckets:[| 1.0; 1.0 |] ()))

let test_registry () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test_registry_total" in
  Alcotest.(check bool) "get-or-create returns the same handle" true
    (c == Metrics.counter "test_registry_total");
  Metrics.Counter.add c 7;
  let g = Metrics.gauge "test_registry_gauge" in
  Metrics.Gauge.set g 2.5;
  (match List.assoc_opt "test_registry_total" (Metrics.snapshot ()) with
  | Some (Metrics.Counter_value 7) -> ()
  | _ -> Alcotest.fail "snapshot missed the counter");
  (* Same name, different kind: refused rather than silently shadowed. *)
  (try
     ignore (Metrics.gauge "test_registry_total");
     Alcotest.fail "kind mismatch accepted"
   with Invalid_argument _ -> ());
  let names = List.map fst (Metrics.snapshot ()) in
  Alcotest.(check (list string)) "snapshot sorted by name" (List.sort compare names) names

(* ----------------------------------------------------------------- spans *)

let test_disabled_is_free () =
  Trace.clear ();
  Obs.set_enabled false;
  let s = Trace.start "off" in
  Trace.finish s;
  Alcotest.(check int) "nothing recorded" 0 (Trace.recorded ());
  Alcotest.(check int) "no ambient context" 0 (Trace.current ())

let test_nesting () =
  with_obs @@ fun () ->
  Trace.with_ ~name:"outer" (fun () ->
      Trace.with_ ~name:"inner" (fun () -> ()));
  match Trace.events () with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer first by start time" "outer" outer.Trace.name;
      Alcotest.(check string) "inner second" "inner" inner.Trace.name;
      Alcotest.(check int) "outer is a root" 0 outer.Trace.parent;
      Alcotest.(check int) "inner parents to outer" outer.Trace.id inner.Trace.parent;
      Alcotest.(check bool) "inner fits inside outer" true
        (inner.Trace.start_ns >= outer.Trace.start_ns
        && inner.Trace.start_ns + inner.Trace.dur_ns
           <= outer.Trace.start_ns + outer.Trace.dur_ns)
  | events -> Alcotest.failf "expected 2 events, got %d" (List.length events)

let test_exception_restores_context () =
  with_obs @@ fun () ->
  (try Trace.with_ ~name:"boom" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "context restored after raise" 0 (Trace.current ());
  Alcotest.(check int) "span still recorded" 1 (Trace.recorded ())

let test_ring_wraparound () =
  with_obs @@ fun () ->
  let saved = Trace.ring_capacity () in
  Fun.protect ~finally:(fun () -> Trace.set_ring_capacity saved) @@ fun () ->
  Trace.set_ring_capacity 8;
  for _ = 1 to 20 do
    Trace.with_ ~name:"tick" (fun () -> ())
  done;
  let events = Trace.events () in
  Alcotest.(check int) "ring keeps only the capacity" 8 (List.length events);
  Alcotest.(check int) "recorded counts wrapped-out spans too" 20 (Trace.recorded ());
  (* Oldest events are the ones overwritten: the survivors are the last 8
     ids issued, in order. *)
  let ids = List.map (fun e -> e.Trace.id) events in
  Alcotest.(check (list int)) "survivors are the newest, oldest-first"
    (List.sort compare ids) ids;
  let oldest = List.hd ids in
  List.iteri
    (fun i id -> Alcotest.(check int) "contiguous ids" (oldest + i) id)
    ids

let test_pool_parenting () =
  (* Spans opened inside pooled tasks parent to the span that was current at
     submission, across at least two domains; children opened inside a task
     parent to that task's span. No torn or dangling parent ids. *)
  with_obs @@ fun () ->
  let tasks = 16 in
  (* The submitter helps drain the queue, so on a single-CPU host it can
     swallow a batch of instant tasks before any worker domain is scheduled.
     Rendezvous instead: every task spins (bounded) until two tasks have
     started, which only happens once two distinct domains each hold one. *)
  let started = Atomic.make 0 in
  let rendezvous () =
    Atomic.incr started;
    let spins = ref 0 in
    while Atomic.get started < 2 && !spins < 50_000_000 do
      incr spins;
      Domain.cpu_relax ()
    done
  in
  let run_once () =
    Trace.clear ();
    Atomic.set started 0;
    Pool.with_pool ~jobs:4 (fun pool ->
        Trace.with_ ~name:"submit" (fun () ->
            ignore
              (Pool.run_list pool
                 (List.init tasks (fun i ->
                      fun () ->
                       Trace.with_ ~name:"task" (fun () ->
                           rendezvous ();
                           Trace.with_ ~name:"child" (fun () -> i)))))));
    let events = Trace.events () in
    Alcotest.(check int) "all spans recorded" ((2 * tasks) + 1) (List.length events);
    let by_name n = List.filter (fun e -> e.Trace.name = n) events in
    let submit =
      match by_name "submit" with [ e ] -> e | _ -> Alcotest.fail "one submit span"
    in
    let task_ids =
      List.map
        (fun e ->
          Alcotest.(check int) "task parents to the submitting span"
            submit.Trace.id e.Trace.parent;
          e.Trace.id)
        (by_name "task")
    in
    Alcotest.(check int) "every task traced" tasks (List.length task_ids);
    List.iter
      (fun e ->
        Alcotest.(check bool) "child parents to some task span" true
          (List.mem e.Trace.parent task_ids))
      (by_name "child");
    List.length
      (List.sort_uniq compare (List.map (fun e -> e.Trace.domain) (by_name "task")))
  in
  let rec attempt n best =
    if n = 0 then best
    else
      let domains = run_once () in
      if domains >= 2 then domains else attempt (n - 1) (max best domains)
  in
  let domains = attempt 5 0 in
  Alcotest.(check bool)
    (Printf.sprintf "tasks ran on >=2 domains (saw %d)" domains)
    true (domains >= 2)

(* ------------------------------------------------------------- exporters *)

(* A minimal JSON reader — just enough to verify the Chrome export is
   well-formed without a JSON dependency. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      then (advance (); skip_ws ())
    in
    let expect c =
      skip_ws ();
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let literal word v =
      String.iter (fun c -> if peek () <> c then raise (Bad word) else advance ()) word;
      v
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance (); Buffer.contents buf
        | '\\' ->
            advance ();
            (match peek () with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'u' ->
                (* \uXXXX: tests only need ASCII escapes; keep the raw code. *)
                advance (); advance (); advance ();
                Buffer.add_char buf '?'
            | c -> Buffer.add_char buf c);
            advance ();
            go ()
        | c -> advance (); Buffer.add_char buf c; go ()
      in
      go ()
    in
    let number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do advance () done;
      if !pos = start then raise (Bad "number");
      float_of_string (String.sub s start (!pos - start))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (advance (); Obj [])
          else
            let rec members acc =
              let key = (skip_ws (); string_lit ()) in
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); members ((key, v) :: acc)
              | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
              | _ -> raise (Bad "object")
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (advance (); List [])
          else
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); elements (v :: acc)
              | ']' -> advance (); List (List.rev (v :: acc))
              | _ -> raise (Bad "array")
            in
            elements []
      | '"' -> Str (string_lit ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> Num (number ())
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member key = function
    | Obj fields -> List.assoc key fields
    | _ -> raise (Bad ("not an object for " ^ key))
end

let test_chrome_json () =
  with_obs @@ fun () ->
  Trace.with_ ~name:"outer \"quoted\"\n" (fun () ->
      Trace.with_ ~name:"inner" (fun () -> ()));
  let json = Json.parse (Export.chrome_json (Trace.events ())) in
  let events =
    match Json.member "traceEvents" json with
    | Json.List events -> events
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  Alcotest.(check int) "both spans exported" 2 (List.length events);
  let find name =
    List.find
      (fun e -> match Json.member "name" e with Json.Str s -> s = name | _ -> false)
      events
  in
  let outer = find "outer \"quoted\"\n" and inner = find "inner" in
  let num key e = match Json.member key e with Json.Num x -> x | _ -> Alcotest.fail key in
  List.iter
    (fun e ->
      (match Json.member "ph" e with
      | Json.Str "X" -> ()
      | _ -> Alcotest.fail "complete events only");
      Alcotest.(check bool) "duration is non-negative" true (num "dur" e >= 0.0))
    events;
  Alcotest.(check (float 0.0)) "hierarchy survives in args"
    (num "id" (Json.member "args" outer))
    (num "parent" (Json.member "args" inner))

let test_prometheus_round_trip () =
  with_obs @@ fun () ->
  Metrics.Counter.add (Metrics.counter "rt_total") 42;
  Metrics.Gauge.set (Metrics.gauge "rt_gauge") 0.1;
  let h = Metrics.histogram ~buckets:[| 0.001; 0.1 |] "rt_seconds" in
  List.iter (Metrics.Histogram.observe h) [ 0.0005; 0.05; 7.0 ];
  let samples = Export.parse_prometheus (Export.prometheus ()) in
  let get name =
    match List.assoc_opt name samples with
    | Some v -> v
    | None -> Alcotest.failf "missing sample %s" name
  in
  Alcotest.(check (float 0.0)) "counter" 42.0 (get "rt_total");
  (* 0.1 has no exact binary representation: the emitter must print enough
     digits that the parse reads back the same float. *)
  Alcotest.(check (float 0.0)) "gauge round-trips exactly" 0.1 (get "rt_gauge");
  Alcotest.(check (float 0.0)) "le=0.001" 1.0 (get "rt_seconds_bucket{le=\"0.001\"}");
  Alcotest.(check (float 0.0)) "le=0.1 cumulative" 2.0
    (get "rt_seconds_bucket{le=\"0.1\"}");
  Alcotest.(check (float 0.0)) "le=+Inf" 3.0 (get "rt_seconds_bucket{le=\"+Inf\"}");
  Alcotest.(check (float 0.0)) "count" 3.0 (get "rt_seconds_count");
  Alcotest.(check (float 1e-12)) "sum" 7.0505 (get "rt_seconds_sum")

let test_counters_mirror () =
  (* lib/resource Counters stay a cheap per-search snapshot; with the flag
     on they also feed the global registry. *)
  with_obs @@ fun () ->
  let registry_evals () =
    Metrics.Counter.value (Metrics.counter "raqo_cost_evaluations_total")
  in
  let c = Raqo_resource.Counters.create () in
  Raqo_resource.Counters.record_evaluations c 5;
  Raqo_resource.Counters.record_hit c;
  Alcotest.(check int) "snapshot view" 5 (Raqo_resource.Counters.cost_evaluations c);
  Alcotest.(check int) "registry mirrored" 5 (registry_evals ());
  Alcotest.(check int) "hits mirrored" 1
    (Metrics.Counter.value (Metrics.counter "raqo_plan_cache_hits_total"));
  (* Merging one snapshot into another moves bookkeeping, not new work: the
     registry must not double count. *)
  let into = Raqo_resource.Counters.create () in
  Raqo_resource.Counters.add ~into c;
  Alcotest.(check int) "add does not re-mirror" 5 (registry_evals ());
  Obs.set_enabled false;
  Raqo_resource.Counters.record_evaluation c;
  Alcotest.(check int) "snapshot still counts when off" 6
    (Raqo_resource.Counters.cost_evaluations c);
  Alcotest.(check int) "registry untouched when off" 5 (registry_evals ())

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter under contention" `Quick test_counter_parallel;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled is free" `Quick test_disabled_is_free;
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "exception restores context" `Quick
            test_exception_restores_context;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "pool parenting across domains" `Quick test_pool_parenting;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome json parses" `Quick test_chrome_json;
          Alcotest.test_case "prometheus round-trip" `Quick test_prometheus_round_trip;
          Alcotest.test_case "counters mirror the registry" `Quick test_counters_mirror;
        ] );
    ]
