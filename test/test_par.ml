(* The multicore planning layer: pool semantics (ordering, exceptions,
   nesting), atomic counters under contention, and the oracle tests pinning
   every parallel path to its sequential result. *)

module Pool = Raqo_par.Pool
module Counters = Raqo_resource.Counters
module Conditions = Raqo_cluster.Conditions
module Resources = Raqo_cluster.Resources
module Schema = Raqo_catalog.Schema
module Tpch = Raqo_catalog.Tpch
module Rng = Raqo_util.Rng

let pool_sizes = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ pool *)

let test_map_order () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let xs = List.init 100 (fun i -> i) in
          Alcotest.(check (list int))
            (Printf.sprintf "squares in order at %d jobs" jobs)
            (List.map (fun x -> x * x) xs)
            (Pool.parallel_map pool (fun x -> x * x) xs)))
    pool_sizes

let test_mapi () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int))
        "indices flow through" [ 10; 21; 32; 43 ]
        (Pool.parallel_mapi pool (fun i x -> (10 * x) + i) [ 1; 2; 3; 4 ]))

let test_reduce () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n =
        Pool.parallel_reduce pool
          ~map:(fun x -> x * x)
          ~combine:( + ) ~init:0
          (List.init 50 (fun i -> i))
      in
      Alcotest.(check int) "sum of squares" 40425 n)

let test_empty_and_single () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (list int)) "empty batch" [] (Pool.parallel_map pool succ []);
      Alcotest.(check (list int)) "one task" [ 8 ] (Pool.parallel_map pool succ [ 7 ]))

exception Boom of int

let test_exception_propagation () =
  (* Every task runs to completion; the lowest-indexed failure is re-raised,
     independent of which domain hit its exception first. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let ran = Atomic.make 0 in
      let work i =
        Atomic.incr ran;
        if i = 2 || i = 5 then raise (Boom i) else i
      in
      (match Pool.parallel_map pool work (List.init 8 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest-indexed failure wins" 2 i);
      Alcotest.(check int) "the whole batch still ran" 8 (Atomic.get ran))

let test_pool_usable_after_exception () =
  (* A failed batch must not poison the pool: the same pool keeps serving
     full, ordered batches afterwards. The parallel DP relies on this when a
     coster raises mid-level (see test_memo.ml for the memo-side invariant). *)
  Pool.with_pool ~jobs:3 (fun pool ->
      (match
         Pool.parallel_map pool
           (fun i -> if i = 4 then raise (Boom i) else i)
           (List.init 9 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "failure index" 4 i);
      let xs = List.init 20 Fun.id in
      Alcotest.(check (list int)) "pool still serves batches" (List.map succ xs)
        (Pool.parallel_map pool succ xs))

let test_nested_use () =
  (* A task submitting its own batch to the same pool must not deadlock: the
     submitter helps drain the queue while it waits. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let outer =
            Pool.parallel_map pool
              (fun i ->
                List.fold_left ( + ) 0
                  (Pool.parallel_map pool (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
              [ 1; 2; 3; 4 ]
          in
          Alcotest.(check (list int))
            (Printf.sprintf "nested batches at %d jobs" jobs)
            [ 36; 66; 96; 126 ] outer))
    pool_sizes

let test_use_after_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.run_list: pool is shut down") (fun () ->
      ignore (Pool.parallel_map pool succ [ 1; 2 ]))

let test_chunks () =
  let xs = List.init 23 (fun i -> i) in
  List.iter
    (fun n ->
      let cs = Pool.chunks n xs in
      Alcotest.(check (list int))
        (Printf.sprintf "chunks %d concat back in order" n)
        xs (List.concat cs);
      Alcotest.(check bool)
        (Printf.sprintf "at most %d chunks" n)
        true
        (List.length cs <= n);
      let sizes = List.map List.length cs in
      let mn = List.fold_left min max_int sizes and mx = List.fold_left max 0 sizes in
      Alcotest.(check bool) "balanced within one element" true (mx - mn <= 1))
    [ 1; 2; 3; 7; 23; 100 ];
  Alcotest.(check (list (list int))) "empty input" [] (Pool.chunks 4 []);
  Alcotest.check_raises "n must be positive" (Invalid_argument "Pool.chunks: n must be >= 1")
    (fun () -> ignore (Pool.chunks 0 [ 1 ]))

(* -------------------------------------------------------------- counters *)

let test_counters_concurrent () =
  (* Many domains hammering one shared Counters.t must lose no increments. *)
  let k = Counters.create () in
  Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Pool.parallel_map pool
           (fun _ ->
             for _ = 1 to 100 do
               Counters.record_evaluation k
             done;
             Counters.record_hit k;
             Counters.record_miss k;
             Counters.record_invocation k)
           (List.init 64 (fun i -> i))));
  Alcotest.(check int) "no lost evaluation increments" 6400 (Counters.cost_evaluations k);
  Alcotest.(check int) "hits" 64 (Counters.cache_hits k);
  Alcotest.(check int) "misses" 64 (Counters.cache_misses k);
  Alcotest.(check int) "invocations" 64 (Counters.planner_invocations k)

(* --------------------------------------------------------- oracle: grid *)

let bowl ~nc_opt ~gb_opt (r : Resources.t) =
  let dn = float_of_int (r.containers - nc_opt) and dg = r.container_gb -. gb_opt in
  (dn *. dn) +. (10.0 *. dg *. dg)

let test_brute_force_par_oracle () =
  let cases =
    [
      ("bowl", bowl ~nc_opt:42 ~gb_opt:6.0);
      (* All-ties: the earliest-enumerated config must win at any pool size. *)
      ("constant", fun (_ : Resources.t) -> 1.0);
    ]
  in
  List.iter
    (fun (cname, cost) ->
      let ks = Counters.create () in
      let seq = Raqo_resource.Brute_force.search ~counters:ks Conditions.default cost in
      List.iter
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let kp = Counters.create () in
              let par =
                Raqo_resource.Brute_force.search_par ~counters:kp pool Conditions.default cost
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s: same config and cost at %d jobs" cname jobs)
                true
                (Resources.equal (fst seq) (fst par) && snd seq = snd par);
              Alcotest.(check int)
                (Printf.sprintf "%s: same evaluation count at %d jobs" cname jobs)
                (Counters.cost_evaluations ks)
                (Counters.cost_evaluations kp)))
        pool_sizes)
    cases

(* --------------------------------------------------- oracle: randomized *)

let model = Raqo.Models.hive ()
let tpch = Tpch.schema ()

let joint_opt =
  Alcotest.testable
    (fun fmt -> function
      | Some (plan, cost) ->
          Format.fprintf fmt "%a @ %g" Raqo_plan.Join_tree.pp_joint plan cost
      | None -> Format.fprintf fmt "none")
    (fun a b ->
      match (a, b) with
      | Some (p1, c1), Some (p2, c2) ->
          c1 = c2
          && Raqo_plan.Join_tree.equal_shape (fun _ _ -> true) (Raqo_planner.Coster.shape_of p1)
               (Raqo_planner.Coster.shape_of p2)
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let test_randomized_par_matches_seq () =
  (* Same seed, any pool size: bit-identical result. The coster factory hands
     each restart a fresh (pure) instance. *)
  let resources = Resources.make ~containers:10 ~container_gb:5.0 in
  let coster () = Raqo_planner.Coster.fixed model tpch resources in
  let seq = Raqo_planner.Randomized.optimize (Rng.create 42) (coster ()) tpch Tpch.all in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let par =
            Raqo_planner.Randomized.optimize_par pool (Rng.create 42) ~coster tpch Tpch.all
          in
          Alcotest.check joint_opt
            (Printf.sprintf "optimize_par == optimize at %d jobs" jobs)
            seq par))
    pool_sizes

let test_cost_based_par_matches_seq () =
  (* The full cost-based stack: parallel restarts plan resources against
     private exact-lookup caches, which return exactly what a fresh search
     would — so equal-seed optimizers agree at any --jobs. *)
  let mk () =
    Raqo.Cost_based.create ~kind:Raqo.Cost_based.Fast_randomized ~seed:7 ~model
      ~conditions:Conditions.default tpch
  in
  let seq = Raqo.Cost_based.optimize (mk ()) Tpch.q3 in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.check joint_opt
            (Printf.sprintf "Cost_based.optimize_par at %d jobs" jobs)
            seq
            (Raqo.Cost_based.optimize_par (mk ()) pool Tpch.q3)))
    pool_sizes

let test_randomized_vs_exhaustive () =
  (* On a query small enough for the exact bushy DP, no randomized variant —
     sequential, pooled, memoized — may beat the exhaustive optimum, and all
     must agree with each other. *)
  let resources = Resources.make ~containers:10 ~container_gb:5.0 in
  let coster () = Raqo_planner.Coster.fixed model tpch resources in
  let rels = Tpch.all in
  Alcotest.(check bool) "query small enough for DPsub" true (List.length rels <= 8);
  let exact =
    match Raqo_planner.Dpsub.optimize (coster ()) tpch rels with
    | Some (_, c) -> c
    | None -> Alcotest.fail "exhaustive DP found no plan"
  in
  let seq = Raqo_planner.Randomized.optimize (Rng.create 3) (coster ()) tpch rels in
  (match seq with
  | Some (_, c) ->
      Alcotest.(check bool) "randomized >= exhaustive optimum" true (c >= exact -. 1e-9)
  | None -> Alcotest.fail "randomized found no plan");
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check joint_opt "pooled matches sequential" seq
        (Raqo_planner.Randomized.optimize_par pool (Rng.create 3) ~coster tpch rels);
      Alcotest.check joint_opt "pooled memoized matches sequential" seq
        (Raqo_planner.Randomized.optimize_par pool (Rng.create 3)
           ~coster:(fun () -> Raqo_planner.Coster.memoize (coster ()))
           tpch rels))

(* ----------------------------------------------------- oracle: memoize *)

let test_memoize_same_plans () =
  let resources = Resources.make ~containers:10 ~container_gb:5.0 in
  List.iter
    (fun (qname, rels) ->
      let plain =
        Raqo_planner.Selinger.optimize (Raqo_planner.Coster.fixed model tpch resources) tpch
          rels
      in
      let memo =
        Raqo_planner.Selinger.optimize
          (Raqo_planner.Coster.memoize (Raqo_planner.Coster.fixed model tpch resources))
          tpch rels
      in
      Alcotest.check joint_opt (qname ^ ": memoized Selinger unchanged") plain memo)
    Tpch.evaluation_queries

let test_memoize_caches_infeasible () =
  (* A None best_join (no feasible implementation) is cached too. *)
  let calls = ref 0 in
  let never =
    Raqo_planner.Coster.
      {
        best_join =
          (fun ~left:_ ~right:_ ->
            incr calls;
            None);
        name = "never";
      }
  in
  let memo = Raqo_planner.Coster.memoize never in
  Alcotest.(check bool) "miss" true
    (memo.Raqo_planner.Coster.best_join ~left:[ "a" ] ~right:[ "b" ] = None);
  Alcotest.(check bool) "hit" true
    (memo.Raqo_planner.Coster.best_join ~left:[ "a" ] ~right:[ "b" ] = None);
  Alcotest.(check bool) "mirrored hit" true
    (memo.Raqo_planner.Coster.best_join ~left:[ "b" ] ~right:[ "a" ] = None);
  Alcotest.(check int) "inner called once" 1 !calls;
  Alcotest.(check string) "name tagged" "never+memo" memo.Raqo_planner.Coster.name

let test_memoize_reduces_selinger_evals () =
  (* The counter-verified saving: Selinger's DP costs mirrored relation-set
     pairs, which the unordered memo key collapses — fewer resource-planner
     cost evaluations for the same chosen plan. *)
  List.iter
    (fun (qname, rels) ->
      let run memoize =
        let opt =
          Raqo.Cost_based.create ~memoize ~cache:false ~model ~conditions:Conditions.default
            tpch
        in
        let result = Raqo.Cost_based.optimize opt rels in
        (Counters.cost_evaluations (Raqo.Cost_based.counters opt), result)
      in
      let plain_evals, plain = run false in
      let memo_evals, memo = run true in
      Alcotest.check joint_opt (qname ^ ": same plan") plain memo;
      Alcotest.(check bool)
        (Printf.sprintf "%s: fewer evaluations (%d < %d)" qname memo_evals plain_evals)
        true (memo_evals < plain_evals))
    Tpch.evaluation_queries

(* --------------------------------------------------- oracle: workloads *)

let test_batch_matches_fifo () =
  (* optimize_batch at any pool size must reproduce the sequential per-query
     planner: same plans, same simulated workload summary. *)
  let rng = Rng.create 11 in
  let submissions =
    Raqo_scheduler.Workload_runner.generate rng ~n:12 ~arrival_rate:0.002 tpch
  in
  let engine = Raqo_execsim.Engine.hive in
  let seq_summary, seq_outcomes =
    Raqo_scheduler.Workload_runner.run engine tpch submissions
      ~planner:
        (Raqo_scheduler.Workload_runner.raqo_planner ~cache_across_queries:false ~model
           ~conditions:Conditions.default ())
  in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let summary, outcomes =
            Raqo_scheduler.Workload_runner.run_batch ~pool engine ~model
              ~conditions:Conditions.default tpch submissions
          in
          Alcotest.(check int)
            (Printf.sprintf "completed at %d jobs" jobs)
            seq_summary.Raqo_scheduler.Workload_runner.completed
            summary.Raqo_scheduler.Workload_runner.completed;
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "makespan at %d jobs" jobs)
            seq_summary.Raqo_scheduler.Workload_runner.makespan
            summary.Raqo_scheduler.Workload_runner.makespan;
          List.iter2
            (fun (a : Raqo_scheduler.Workload_runner.query_outcome)
                 (b : Raqo_scheduler.Workload_runner.query_outcome) ->
              Alcotest.(check bool) "same per-query outcome" true
                (a.finished = b.finished && a.gb_seconds = b.gb_seconds
               && a.failed = b.failed))
            seq_outcomes outcomes))
    pool_sizes

let () =
  Alcotest.run "raqo_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "mapi" `Quick test_mapi;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "empty and single batches" `Quick test_empty_and_single;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "usable after a failed batch" `Quick
            test_pool_usable_after_exception;
          Alcotest.test_case "nested use" `Quick test_nested_use;
          Alcotest.test_case "use after shutdown" `Quick test_use_after_shutdown;
          Alcotest.test_case "chunks" `Quick test_chunks;
        ] );
      ( "counters",
        [ Alcotest.test_case "atomic under contention" `Quick test_counters_concurrent ] );
      ( "oracles",
        [
          Alcotest.test_case "brute force par == seq" `Quick test_brute_force_par_oracle;
          Alcotest.test_case "randomized par == seq" `Quick test_randomized_par_matches_seq;
          Alcotest.test_case "cost-based par == seq" `Quick test_cost_based_par_matches_seq;
          Alcotest.test_case "randomized vs exhaustive" `Quick test_randomized_vs_exhaustive;
          Alcotest.test_case "memoize: same plans" `Quick test_memoize_same_plans;
          Alcotest.test_case "memoize: caches infeasible" `Quick test_memoize_caches_infeasible;
          Alcotest.test_case "memoize: fewer Selinger evals" `Quick
            test_memoize_reduces_selinger_evals;
          Alcotest.test_case "workload batch == FIFO" `Quick test_batch_matches_fifo;
        ] );
    ]
