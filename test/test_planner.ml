(* Tests for Raqo_planner: costers, Selinger DP, randomized search,
   exhaustive oracle, heuristics. Correctness is anchored on the oracle:
   Selinger must match it on left-deep-optimal instances, and the randomized
   planner must land within a small factor. *)

module Coster = Raqo_planner.Coster
module Selinger = Raqo_planner.Selinger
module Randomized = Raqo_planner.Randomized
module Exhaustive = Raqo_planner.Exhaustive
module Heuristics = Raqo_planner.Heuristics
module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions
module Schema = Raqo_catalog.Schema
module Tpch = Raqo_catalog.Tpch
module Rng = Raqo_util.Rng

let schema = Tpch.schema ()
let res nc gb = Resources.make ~containers:nc ~container_gb:gb
let fixed_res = res 10 5.0
let model = Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper
let fixed_coster () = Coster.fixed model schema fixed_res

let raqo_coster () =
  let planner = Raqo_resource.Resource_planner.create Conditions.default in
  Coster.raqo model schema planner

let sim_coster () = Coster.simulator Raqo_execsim.Engine.hive schema fixed_res

(* ---------------------------------------------------------------- Coster *)

let test_fixed_coster_picks_cheaper_impl () =
  let c = fixed_coster () in
  match c.Coster.best_join ~left:[ "orders" ] ~right:[ "lineitem" ] with
  | Some choice ->
      let by_hand impl =
        Raqo_cost.Op_cost.predict_exn model impl
          ~small_gb:(Raqo_cost.Plan_cost.join_small_gb schema ~left:[ "orders" ] ~right:[ "lineitem" ])
          ~resources:fixed_res
      in
      let expected = Float.min (by_hand Join_impl.Smj) (by_hand Join_impl.Bhj) in
      Alcotest.(check (float 1e-9)) "min of impls" expected choice.Coster.cost
  | None -> Alcotest.fail "feasible"

let test_fixed_coster_resources_are_fixed () =
  let c = fixed_coster () in
  match c.Coster.best_join ~left:[ "orders" ] ~right:[ "lineitem" ] with
  | Some choice -> Alcotest.(check bool) "fixed" true (Resources.equal choice.Coster.resources fixed_res)
  | None -> Alcotest.fail "feasible"

let test_raqo_coster_never_worse_than_fixed () =
  (* Resource planning searches a superset including the fixed config's
     whole grid; with hill climbing it can stop at a local optimum, but on
     the orders⋈lineitem surface it must at least beat the 1-container
     minimum and produce a finite cost. *)
  let c = raqo_coster () in
  match c.Coster.best_join ~left:[ "orders" ] ~right:[ "lineitem" ] with
  | Some choice -> Alcotest.(check bool) "finite" true (Float.is_finite choice.Coster.cost)
  | None -> Alcotest.fail "feasible"

let test_cost_tree_sums_joins () =
  let c = fixed_coster () in
  let shape =
    Join_tree.Join
      ( (),
        Join_tree.Join ((), Join_tree.Scan "orders", Join_tree.Scan "lineitem"),
        Join_tree.Scan "customer" )
  in
  match Coster.cost_tree c shape with
  | Some (annotated, total) ->
      Alcotest.(check int) "2 joins annotated" 2 (Join_tree.n_joins annotated);
      let parts =
        [
          c.Coster.best_join ~left:[ "orders" ] ~right:[ "lineitem" ];
          c.Coster.best_join ~left:[ "orders"; "lineitem" ] ~right:[ "customer" ];
        ]
      in
      let expected =
        List.fold_left
          (fun acc p ->
            match p with
            | Some ch -> acc +. ch.Coster.cost
            | None -> Alcotest.fail "feasible")
          0.0 parts
      in
      Alcotest.(check (float 1e-9)) "sum" expected total
  | None -> Alcotest.fail "feasible"

let test_cost_tree_infeasible_none () =
  (* At 1 GB fixed containers the simulator still runs SMJ, so use a coster
     that rejects everything. *)
  let never = { Coster.best_join = (fun ~left:_ ~right:_ -> None); name = "never" } in
  let shape = Join_tree.Join ((), Join_tree.Scan "orders", Join_tree.Scan "lineitem") in
  Alcotest.(check bool) "None" true (Coster.cost_tree never shape = None)

let test_shape_of_strips () =
  let joint =
    Join_tree.Join ((Join_impl.Smj, fixed_res), Join_tree.Scan "a", Join_tree.Scan "b")
  in
  match Coster.shape_of joint with
  | Join_tree.Join ((), Join_tree.Scan "a", Join_tree.Scan "b") -> ()
  | _ -> Alcotest.fail "bad shape"

(* -------------------------------------------------------------- Selinger *)

let test_selinger_single_relation () =
  match Selinger.optimize (fixed_coster ()) schema [ "orders" ] with
  | Some (Join_tree.Scan "orders", cost) -> Alcotest.(check (float 1e-9)) "no joins" 0.0 cost
  | _ -> Alcotest.fail "expected bare scan"

let test_selinger_produces_valid_left_deep () =
  List.iter
    (fun (name, rels) ->
      match Selinger.optimize (fixed_coster ()) schema rels with
      | Some (plan, cost) ->
          Alcotest.(check bool) (name ^ " valid") true (Join_tree.valid plan);
          Alcotest.(check bool) (name ^ " left deep") true (Join_tree.left_deep plan);
          Alcotest.(check int) (name ^ " joins all") (List.length rels)
            (List.length (Join_tree.relations plan));
          Alcotest.(check bool) (name ^ " finite") true (Float.is_finite cost)
      | None -> Alcotest.failf "%s: no plan" name)
    Tpch.evaluation_queries

let test_selinger_matches_exhaustive_left_deep_oracle () =
  (* With 3 relations every bushy tree is left-deep up to mirroring, and
     costers order build/probe sides by size, so the DP must match the full
     exhaustive oracle on Q3. *)
  let coster = fixed_coster () in
  match
    (Selinger.optimize coster schema Tpch.q3, Exhaustive.optimize coster schema Tpch.q3)
  with
  | Some (_, dp), Some (_, oc) -> Alcotest.(check (float 1e-6)) "DP = oracle" oc dp
  | _ -> Alcotest.fail "both should find plans"

let test_selinger_avoids_cartesian () =
  match Selinger.optimize (fixed_coster ()) schema Tpch.all with
  | Some (plan, _) ->
      let ok =
        Join_tree.fold_joins
          (fun acc _ left right ->
            acc
            && Raqo_catalog.Join_graph.edges_between (Schema.graph schema) left right <> [])
          true plan
      in
      Alcotest.(check bool) "every join has an edge" true ok
  | None -> Alcotest.fail "plan expected"

let test_selinger_rejects_empty_and_unknown () =
  Alcotest.check_raises "empty" (Invalid_argument "Selinger.optimize: empty relation set")
    (fun () -> ignore (Selinger.optimize (fixed_coster ()) schema []));
  Alcotest.check_raises "unknown" (Invalid_argument "Selinger.optimize: unknown zz")
    (fun () -> ignore (Selinger.optimize (fixed_coster ()) schema [ "zz" ]))

let test_selinger_none_when_all_infeasible () =
  let never = { Coster.best_join = (fun ~left:_ ~right:_ -> None); name = "never" } in
  Alcotest.(check bool) "None" true (Selinger.optimize never schema Tpch.q12 = None)

let test_selinger_with_simulator_coster () =
  (* Ground-truth coster: DP must still produce a valid plan whose cost
     equals re-simulating it. *)
  let coster = sim_coster () in
  match Selinger.optimize coster schema Tpch.q3 with
  | Some (plan, cost) -> begin
      match Raqo_execsim.Simulate.run_joint Raqo_execsim.Engine.hive schema plan with
      | Ok run -> Alcotest.(check (float 1e-6)) "cost = simulated" run.Raqo_execsim.Simulate.seconds cost
      | Error e -> Alcotest.fail e
    end
  | None -> Alcotest.fail "plan expected"

(* ------------------------------------------------------------ Randomized *)

let test_random_shape_valid () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    let shape = Randomized.random_shape rng schema Tpch.all in
    Alcotest.(check bool) "valid" true (Join_tree.valid shape);
    Alcotest.(check int) "all relations" 8 (List.length (Join_tree.relations shape))
  done

let test_random_shape_no_cartesian () =
  let rng = Rng.create 2 in
  for _ = 1 to 50 do
    let shape = Randomized.random_shape rng schema Tpch.all in
    let ok =
      Join_tree.fold_joins
        (fun acc _ left right ->
          acc && Raqo_catalog.Join_graph.edges_between (Schema.graph schema) left right <> [])
        true shape
    in
    Alcotest.(check bool) "no cartesian" true ok
  done

let test_mutate_preserves_validity () =
  let rng = Rng.create 3 in
  let shape = ref (Randomized.random_shape rng schema Tpch.all) in
  let mutated = ref 0 in
  for _ = 1 to 300 do
    match Randomized.mutate rng schema !shape with
    | Some s ->
        incr mutated;
        Alcotest.(check bool) "valid" true (Join_tree.valid s);
        Alcotest.(check (list string)) "same relations"
          (List.sort compare (Join_tree.relations !shape))
          (List.sort compare (Join_tree.relations s));
        shape := s
    | None -> ()
  done;
  Alcotest.(check bool) "some mutations applied" true (!mutated > 30)

let test_randomized_close_to_selinger () =
  let coster = fixed_coster () in
  let rng = Rng.create 4 in
  match
    ( Randomized.optimize ~params:{ Randomized.iterations = 10; max_no_improve = 50 } rng
        coster schema Tpch.q3,
      Selinger.optimize coster schema Tpch.q3 )
  with
  | Some (_, rc), Some (_, sc) ->
      (* Bushy space includes left-deep: randomized should be close (it can
         even win, since Selinger is restricted to left-deep trees). *)
      Alcotest.(check bool)
        (Printf.sprintf "within 2x (randomized %.1f vs selinger %.1f)" rc sc)
        true (rc <= 2.0 *. sc +. 1e-6)
  | _ -> Alcotest.fail "both should find plans"

let test_randomized_deterministic_for_seed () =
  let coster = fixed_coster () in
  let run seed =
    match Randomized.optimize (Rng.create seed) coster schema Tpch.q2 with
    | Some (_, c) -> c
    | None -> Alcotest.fail "plan expected"
  in
  Alcotest.(check (float 1e-12)) "same seed, same cost" (run 9) (run 9)

let test_local_optima_count () =
  let coster = fixed_coster () in
  let rng = Rng.create 5 in
  let optima =
    Randomized.local_optima ~params:{ Randomized.iterations = 7; max_no_improve = 10 } rng
      coster schema Tpch.q3
  in
  Alcotest.(check int) "one per restart" 7 (List.length optima)

let test_randomized_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Randomized.local_optima: empty relation set")
    (fun () -> ignore (Randomized.optimize (Rng.create 1) (fixed_coster ()) schema []))

(* ------------------------------------------------------------ Exhaustive *)

let test_exhaustive_counts_q3 () =
  (* 3 relations in a chain a-b-c: bushy cartesian-free shapes up to
     commutativity: ((a b) c), ((b c) a) — joining (a c) first is cartesian. *)
  Alcotest.(check int) "2 shapes for a chain of 3" 2
    (List.length (Exhaustive.all_shapes schema Tpch.q3))

let test_exhaustive_optimize_not_above_selinger () =
  let coster = fixed_coster () in
  match (Exhaustive.optimize coster schema Tpch.q2, Selinger.optimize coster schema Tpch.q2) with
  | Some (_, eo), Some (_, so) ->
      Alcotest.(check bool) "oracle <= left-deep DP" true (eo <= so +. 1e-9)
  | _ -> Alcotest.fail "plans expected"

let test_exhaustive_rejects_oversize () =
  let rng = Rng.create 6 in
  let big = Raqo_catalog.Random_schema.generate rng ~tables:9 in
  Alcotest.check_raises "too many"
    (Invalid_argument "Exhaustive.all_shapes: too many relations") (fun () ->
      ignore (Exhaustive.all_shapes big (Schema.relation_names big)))

(* --------------------------------------------------------------- Pruning *)

let test_pruned_matches_unpruned_cost () =
  (* Floored model: nonnegative costs, so pruning is sound and exact. *)
  let coster = fixed_coster () in
  List.iter
    (fun (name, rels) ->
      let plain = Selinger.optimize coster schema rels in
      let pruned, _ = Selinger.optimize_pruned coster schema rels in
      match (plain, pruned) with
      | Some (_, a), Some (_, b) -> Alcotest.(check (float 1e-9)) (name ^ " same cost") a b
      | _ -> Alcotest.failf "%s: both should plan" name)
    Tpch.evaluation_queries

let test_pruned_saves_invocations () =
  let coster = fixed_coster () in
  let _, unpruned =
    (* Count baseline invocations via a wrapping coster. *)
    let count = ref 0 in
    let counting =
      {
        Coster.best_join =
          (fun ~left ~right ->
            incr count;
            coster.Coster.best_join ~left ~right);
        name = "counting";
      }
    in
    let _ = Selinger.optimize counting schema Tpch.all in
    ((), !count)
  in
  let _, pruned = Selinger.optimize_pruned coster schema Tpch.all in
  Alcotest.(check bool)
    (Printf.sprintf "pruned %d <= unpruned %d" pruned unpruned)
    true (pruned <= unpruned)

let test_pruned_with_raqo_coster () =
  let planner = Raqo_resource.Resource_planner.create Conditions.default in
  let coster = Coster.raqo model schema planner in
  let result, _ = Selinger.optimize_pruned coster schema Tpch.q3 in
  match (result, Selinger.optimize coster schema Tpch.q3) with
  | Some (_, a), Some (_, b) -> Alcotest.(check (float 1e-9)) "same optimum" b a
  | _ -> Alcotest.fail "plans expected"

(* ----------------------------------------------------------------- DPsub *)

let test_dpsub_matches_exhaustive () =
  (* The bushy DP must equal the exhaustive bushy oracle. *)
  let coster = fixed_coster () in
  List.iter
    (fun (name, rels) ->
      match
        (Raqo_planner.Dpsub.optimize coster schema rels, Exhaustive.optimize coster schema rels)
      with
      | Some (_, dp), Some (_, oracle) ->
          Alcotest.(check (float 1e-6)) (name ^ ": DPsub = oracle") oracle dp
      | _ -> Alcotest.failf "%s: both should find plans" name)
    [ ("Q12", Tpch.q12); ("Q3", Tpch.q3); ("Q2", Tpch.q2); ("All", Tpch.all) ]

let test_dpsub_not_worse_than_selinger () =
  (* Bushy space contains the left-deep space. *)
  let coster = fixed_coster () in
  match
    (Raqo_planner.Dpsub.optimize coster schema Tpch.all, Selinger.optimize coster schema Tpch.all)
  with
  | Some (_, bushy), Some (_, left_deep) ->
      Alcotest.(check bool) "bushy <= left-deep" true (bushy <= left_deep +. 1e-9)
  | _ -> Alcotest.fail "plans expected"

let test_dpsub_valid_plans () =
  let coster = raqo_coster () in
  match Raqo_planner.Dpsub.optimize coster schema Tpch.all with
  | Some (plan, _) ->
      Alcotest.(check bool) "valid" true (Join_tree.valid plan);
      Alcotest.(check int) "all 8 relations" 8 (List.length (Join_tree.relations plan));
      let cartesian_free =
        Join_tree.fold_joins
          (fun acc _ left right ->
            acc && Raqo_catalog.Join_graph.edges_between (Schema.graph schema) left right <> [])
          true plan
      in
      Alcotest.(check bool) "cartesian-free" true cartesian_free
  | None -> Alcotest.fail "plan expected"

let test_dpsub_single_relation () =
  match Raqo_planner.Dpsub.optimize (fixed_coster ()) schema [ "orders" ] with
  | Some (Join_tree.Scan "orders", cost) -> Alcotest.(check (float 1e-9)) "free" 0.0 cost
  | _ -> Alcotest.fail "bare scan expected"

let test_dpsub_rejects_oversize () =
  let rng = Rng.create 77 in
  let big = Raqo_catalog.Random_schema.generate rng ~tables:(Raqo_planner.Dpsub.max_relations + 1) in
  Alcotest.check_raises "too many"
    (Invalid_argument "Dpsub.optimize: too many relations for bushy DP") (fun () ->
      ignore
        (Raqo_planner.Dpsub.optimize (fixed_coster ()) big (Schema.relation_names big)))

let prop_dpsub_below_randomized =
  (* Exact bushy DP lower-bounds the randomized bushy search. *)
  QCheck.Test.make ~name:"DPsub <= randomized on random schemas" ~count:15
    QCheck.(int_range 1 500)
    (fun seed ->
      let rng = Rng.create seed in
      let s = Raqo_catalog.Random_schema.generate rng ~tables:7 in
      let rels = Schema.relation_names s in
      let coster = Coster.fixed model s fixed_res in
      match
        (Raqo_planner.Dpsub.optimize coster s rels, Randomized.optimize rng coster s rels)
      with
      | Some (_, dp), Some (_, rand) -> dp <= rand +. 1e-6
      | Some _, None -> true
      | None, _ -> false)

(* ------------------------------------------------------------ Heuristics *)

let test_greedy_left_deep_valid () =
  let shape = Heuristics.greedy_left_deep schema Tpch.all in
  Alcotest.(check bool) "valid" true (Join_tree.valid shape);
  Alcotest.(check bool) "left deep" true (Join_tree.left_deep shape);
  Alcotest.(check int) "all 8" 8 (List.length (Join_tree.relations shape))

let test_greedy_starts_smallest () =
  match Heuristics.greedy_left_deep schema Tpch.q3 with
  | Join_tree.Join (_, Join_tree.Join (_, Join_tree.Scan first, _), _) ->
      (* customer (2.5 GB) < orders (16.5) < lineitem (77). *)
      Alcotest.(check string) "starts at customer" "customer" first
  | _ -> Alcotest.fail "expected two-join left-deep tree"

let test_default_plan_uses_stock_rule () =
  let plan = Heuristics.default_plan Raqo_execsim.Engine.hive schema Tpch.q12 in
  (* orders is far above 10 MB: the stock rule picks SMJ. *)
  match Join_tree.annotations plan with
  | [ impl ] -> Alcotest.(check bool) "SMJ" true (Join_impl.equal impl Join_impl.Smj)
  | _ -> Alcotest.fail "one join expected"

let prop_selinger_never_worse_than_greedy =
  (* The DP explores every left-deep order, so it can't lose to the greedy
     left-deep heuristic under the same coster. *)
  QCheck.Test.make ~name:"Selinger <= greedy left-deep" ~count:20
    QCheck.(int_range 1 500)
    (fun seed ->
      let rng = Rng.create seed in
      let s = Raqo_catalog.Random_schema.generate rng ~tables:6 in
      let rels = Schema.relation_names s in
      let coster = Coster.fixed model s fixed_res in
      match (Selinger.optimize coster s rels, Coster.cost_tree coster (Heuristics.greedy_left_deep s rels)) with
      | Some (_, dp), Some (_, greedy) -> dp <= greedy +. 1e-6
      | Some _, None -> true
      | None, _ -> false)

let prop_randomized_plans_valid =
  QCheck.Test.make ~name:"randomized plans are valid joint plans" ~count:20
    QCheck.(int_range 1 500)
    (fun seed ->
      let rng = Rng.create seed in
      let coster = fixed_coster () in
      match Randomized.optimize rng coster schema Tpch.q2 with
      | Some (plan, _) ->
          Join_tree.valid plan
          && List.sort compare (Join_tree.relations plan) = List.sort compare Tpch.q2
      | None -> false)

(* ------------------------------------------------------- mask-based core *)

module Interned = Raqo_catalog.Interned
module Dpsub = Raqo_planner.Dpsub

let test_interned_roundtrip () =
  let ctx = Interned.make schema Tpch.all in
  Alcotest.(check int) "n" 8 (Interned.n ctx);
  Alcotest.(check (list string)) "relations keep admission order" Tpch.all
    (Interned.relations ctx);
  Alcotest.(check (list string)) "full mask round-trips in id order" Tpch.all
    (Interned.names_of_mask ctx (Interned.full_mask ctx));
  List.iteri
    (fun i r ->
      Alcotest.(check int) (r ^ " mask is singleton") (1 lsl i) (Interned.mask_of_name ctx r);
      Alcotest.(check string) (r ^ " name") r (Interned.name ctx i);
      Alcotest.(check (list string))
        (r ^ " singleton round-trips") [ r ]
        (Interned.names_of_mask ctx (Interned.mask_of_name ctx r)))
    Tpch.all;
  Alcotest.(check int) "mask_of_names folds" (Interned.full_mask ctx)
    (Interned.mask_of_names ctx (List.rev Tpch.all))

let test_interned_adjacency_matches_graph () =
  let ctx = Interned.make schema Tpch.all in
  let rels = Array.of_list Tpch.all in
  let graph = Schema.graph schema in
  let adj = Interned.adj ctx in
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j _ ->
          let bit = adj.(i) land (1 lsl j) <> 0 in
          let edge =
            i <> j
            && Option.is_some (Raqo_catalog.Join_graph.selectivity graph rels.(i) rels.(j))
          in
          Alcotest.(check bool)
            (Printf.sprintf "adj %s-%s" rels.(i) rels.(j))
            edge bit)
        rels)
    rels

let test_interned_connected_matches_graph () =
  let ctx = Interned.make schema Tpch.all in
  let graph = Schema.graph schema in
  for mask = 1 to Interned.full_mask ctx do
    let names = Interned.names_of_mask ctx mask in
    Alcotest.(check bool)
      (Printf.sprintf "connectivity of mask %d" mask)
      (Raqo_catalog.Join_graph.connected graph names)
      (Interned.connected ctx mask)
  done

let test_interned_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Interned.make: empty relation set")
    (fun () -> ignore (Interned.make schema []));
  Alcotest.check_raises "unknown" (Invalid_argument "Interned.make: unknown zz") (fun () ->
      ignore (Interned.make schema [ "zz" ]))

(* The extracted enumeration helpers against brute-force references: both the
   set of values and the visiting order are part of the contract. *)
let test_interned_subsets_of_size () =
  for n = 0 to 12 do
    for size = 0 to n + 1 do
      let reference =
        (* The documented contract: no subsets enumerated at size 0. *)
        if size = 0 then []
        else
          List.filter
            (fun m -> Interned.popcount m = size)
            (List.init (1 lsl n) Fun.id)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "n=%d size=%d: ascending and complete" n size)
        reference
        (Interned.subsets_of_size ~n ~size)
    done
  done;
  Alcotest.(check (list int)) "size 0 is empty" [] (Interned.subsets_of_size ~n:5 ~size:0);
  Alcotest.(check (list int)) "size > n is empty" [] (Interned.subsets_of_size ~n:3 ~size:4);
  Alcotest.check_raises "negative n"
    (Invalid_argument "Interned.iter_subsets_of_size: bad n") (fun () ->
      ignore (Interned.subsets_of_size ~n:(-1) ~size:1));
  Alcotest.check_raises "n above the cap"
    (Invalid_argument "Interned.iter_subsets_of_size: bad n") (fun () ->
      ignore (Interned.subsets_of_size ~n:(Interned.max_relations + 1) ~size:1))

let test_interned_fold_splits () =
  (* The historical inline loop the planners used, kept as the oracle. *)
  let reference mask =
    let low = mask land (-mask) in
    let acc = ref [] in
    let sub = ref ((mask - 1) land mask) in
    while !sub <> 0 do
      if !sub land low <> 0 then acc := (!sub, mask lxor !sub) :: !acc;
      sub := (!sub - 1) land mask
    done;
    List.rev !acc
  in
  let masks =
    [ 1; 3; 5; 6 lor 1; 0b10110; 0b1111111; 0b1010101010; (1 lsl 12) - 1 ]
  in
  List.iter
    (fun mask ->
      let got =
        List.rev
          (Interned.fold_splits mask ~init:[] ~f:(fun acc ~sub ~rest ->
               (sub, rest) :: acc))
      in
      let want = reference mask in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "splits of %#x in reference order" mask)
        want got;
      let k = Interned.popcount mask in
      Alcotest.(check int)
        (Printf.sprintf "split count of %#x" mask)
        ((1 lsl (k - 1)) - 1)
        (List.length got);
      List.iter
        (fun (sub, rest) ->
          Alcotest.(check bool) "partitions the mask" true
            (sub lor rest = mask && sub land rest = 0 && sub <> 0 && rest <> 0);
          Alcotest.(check bool) "sub holds the lowest bit" true
            (sub land (mask land -mask) <> 0))
        got;
      (* iter_splits is the same walk, for effects. *)
      let via_iter = ref [] in
      Interned.iter_splits mask (fun ~sub ~rest -> via_iter := (sub, rest) :: !via_iter);
      Alcotest.(check (list (pair int int))) "iter_splits agrees" want (List.rev !via_iter))
    masks;
  Alcotest.check_raises "empty mask" (Invalid_argument "Interned.fold_splits: empty mask")
    (fun () -> Interned.iter_splits 0 (fun ~sub:_ ~rest:_ -> ()))

(* Both arms share one underlying coster, so these tests check the interning
   machinery itself: identical plans, costs, and invocation counts. *)
let masked_and_reference_arms rels base =
  let ctx = Interned.make schema rels in
  let m, m_count = Coster.counting_masked (Coster.of_strings ctx base) in
  let s, s_count = Coster.counting base in
  (ctx, m, m_count, s, s_count)

let test_masked_selinger_bit_identical () =
  List.iter
    (fun (name, rels) ->
      let ctx, m, mc, s, sc = masked_and_reference_arms rels (fixed_coster ()) in
      let masked = Selinger.optimize_masked m ctx in
      let reference = Selinger.optimize_reference s schema rels in
      Alcotest.(check bool) (name ^ ": same plan and cost") true (masked = reference);
      Alcotest.(check int) (name ^ ": same invocations") (sc ()) (mc ()))
    Tpch.evaluation_queries

let test_masked_selinger_pruned_bit_identical () =
  List.iter
    (fun (name, rels) ->
      let ctx, m, mc, s, sc = masked_and_reference_arms rels (fixed_coster ()) in
      let masked = Selinger.optimize_pruned_masked m ctx in
      let reference = Selinger.optimize_pruned_reference s schema rels in
      Alcotest.(check bool) (name ^ ": same plan, cost, DP count") true (masked = reference);
      Alcotest.(check int) (name ^ ": same coster invocations") (sc ()) (mc ()))
    Tpch.evaluation_queries

let test_masked_dpsub_bit_identical () =
  List.iter
    (fun (name, rels) ->
      let ctx, m, mc, s, sc = masked_and_reference_arms rels (fixed_coster ()) in
      let masked = Dpsub.optimize_masked m ctx in
      let reference = Dpsub.optimize_reference s schema rels in
      Alcotest.(check bool) (name ^ ": same plan and cost") true (masked = reference);
      Alcotest.(check int) (name ^ ": same invocations") (sc ()) (mc ()))
    Tpch.evaluation_queries

let test_masked_randomized_bit_identical () =
  let ctx, m, mc, s, sc = masked_and_reference_arms Tpch.q2 (fixed_coster ()) in
  let masked = Randomized.optimize_masked (Rng.create 11) m ctx in
  let reference = Randomized.optimize (Rng.create 11) s schema Tpch.q2 in
  Alcotest.(check bool) "same plan and cost for one seed" true (masked = reference);
  Alcotest.(check int) "same invocations" (sc ()) (mc ())

let test_masked_memoize_bit_identical () =
  (* The mask memo must collapse exactly the pairs the string memo collapses:
     same results AND the same number of underlying lookups. *)
  List.iter
    (fun (name, rels) ->
      let ctx, m, mc, s, sc = masked_and_reference_arms rels (fixed_coster ()) in
      let masked = Selinger.optimize_masked (Coster.memoize_masked ctx m) ctx in
      let reference = Selinger.optimize_reference (Coster.memoize s) schema rels in
      Alcotest.(check bool) (name ^ ": same plan and cost") true (masked = reference);
      Alcotest.(check int) (name ^ ": same underlying lookups") (sc ()) (mc ()))
    Tpch.evaluation_queries

let test_masked_raqo_coster_bit_identical () =
  (* Joint arms: each side gets its own (deterministic) resource planner. *)
  let ctx = Interned.make schema Tpch.q2 in
  let rp_masked = Raqo_resource.Resource_planner.create Conditions.default in
  let rp_string = Raqo_resource.Resource_planner.create Conditions.default in
  let masked =
    Selinger.optimize_masked (Coster.raqo_masked model ctx rp_masked) ctx
  in
  let reference = Selinger.optimize_reference (Coster.raqo model schema rp_string) schema Tpch.q2 in
  Alcotest.(check bool) "same joint plan and cost" true (masked = reference)

let test_masked_public_entry_points_agree () =
  (* The public string API now runs on the mask core; spot-check it against
     the kept reference implementations. *)
  List.iter
    (fun (name, rels) ->
      let coster = fixed_coster () in
      Alcotest.(check bool)
        (name ^ ": Selinger public = reference")
        true
        (Selinger.optimize coster schema rels = Selinger.optimize_reference coster schema rels);
      Alcotest.(check bool)
        (name ^ ": Dpsub public = reference")
        true
        (Dpsub.optimize coster schema rels = Dpsub.optimize_reference coster schema rels))
    Tpch.evaluation_queries

let test_masked_caps_preserved () =
  let rng = Rng.create 123 in
  let big = Raqo_catalog.Random_schema.generate rng ~tables:21 in
  let ctx = Interned.make big (Schema.relation_names big) in
  let m = Coster.of_strings ctx (Coster.fixed model big fixed_res) in
  Alcotest.check_raises "selinger cap"
    (Invalid_argument "Selinger.optimize: too many relations for exhaustive DP") (fun () ->
      ignore (Selinger.optimize_masked m ctx));
  Alcotest.check_raises "dpsub cap"
    (Invalid_argument "Dpsub.optimize: too many relations for bushy DP") (fun () ->
      ignore (Dpsub.optimize_masked m ctx))

let prop_masked_selinger_matches_reference =
  QCheck.Test.make ~name:"masked Selinger = string reference on random schemas" ~count:25
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let s = Raqo_catalog.Random_schema.generate rng ~tables:6 in
      let rels = Schema.relation_names s in
      let ctx = Interned.make s rels in
      let base = Coster.fixed model s fixed_res in
      let m, mc = Coster.counting_masked (Coster.of_strings ctx base) in
      let str, sc = Coster.counting base in
      Selinger.optimize_masked m ctx = Selinger.optimize_reference str s rels
      && mc () = sc ())

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_planner"
    [
      ( "coster",
        [
          Alcotest.test_case "fixed picks cheaper impl" `Quick test_fixed_coster_picks_cheaper_impl;
          Alcotest.test_case "fixed keeps resources fixed" `Quick
            test_fixed_coster_resources_are_fixed;
          Alcotest.test_case "raqo coster feasible" `Quick test_raqo_coster_never_worse_than_fixed;
          Alcotest.test_case "cost_tree sums joins" `Quick test_cost_tree_sums_joins;
          Alcotest.test_case "cost_tree None on infeasible" `Quick test_cost_tree_infeasible_none;
          Alcotest.test_case "shape_of strips annotations" `Quick test_shape_of_strips;
        ] );
      ( "selinger",
        [
          Alcotest.test_case "single relation" `Quick test_selinger_single_relation;
          Alcotest.test_case "valid left-deep plans on TPC-H" `Quick
            test_selinger_produces_valid_left_deep;
          Alcotest.test_case "matches the left-deep oracle" `Quick
            test_selinger_matches_exhaustive_left_deep_oracle;
          Alcotest.test_case "avoids cartesian products" `Quick test_selinger_avoids_cartesian;
          Alcotest.test_case "input validation" `Quick test_selinger_rejects_empty_and_unknown;
          Alcotest.test_case "None when coster rejects all" `Quick
            test_selinger_none_when_all_infeasible;
          Alcotest.test_case "simulator-coster consistency" `Quick
            test_selinger_with_simulator_coster;
        ]
        @ [
            Alcotest.test_case "pruned DP keeps the optimum" `Quick
              test_pruned_matches_unpruned_cost;
            Alcotest.test_case "pruning never costs more joins" `Quick
              test_pruned_saves_invocations;
            Alcotest.test_case "pruned DP with the RAQO coster" `Quick
              test_pruned_with_raqo_coster;
          ]
        @ qsuite [ prop_selinger_never_worse_than_greedy ] );
      ( "randomized",
        [
          Alcotest.test_case "random shapes valid" `Quick test_random_shape_valid;
          Alcotest.test_case "random shapes cartesian-free" `Quick test_random_shape_no_cartesian;
          Alcotest.test_case "mutations preserve validity" `Quick test_mutate_preserves_validity;
          Alcotest.test_case "close to Selinger on Q3" `Quick test_randomized_close_to_selinger;
          Alcotest.test_case "deterministic per seed" `Quick test_randomized_deterministic_for_seed;
          Alcotest.test_case "one local optimum per restart" `Quick test_local_optima_count;
          Alcotest.test_case "rejects empty input" `Quick test_randomized_rejects_empty;
        ]
        @ qsuite [ prop_randomized_plans_valid ] );
      ( "dpsub",
        [
          Alcotest.test_case "equals the exhaustive oracle" `Quick test_dpsub_matches_exhaustive;
          Alcotest.test_case "never worse than Selinger" `Quick test_dpsub_not_worse_than_selinger;
          Alcotest.test_case "valid joint plans" `Quick test_dpsub_valid_plans;
          Alcotest.test_case "single relation" `Quick test_dpsub_single_relation;
          Alcotest.test_case "rejects oversize inputs" `Quick test_dpsub_rejects_oversize;
        ]
        @ qsuite [ prop_dpsub_below_randomized ] );
      ( "exhaustive",
        [
          Alcotest.test_case "shape count on a 3-chain" `Quick test_exhaustive_counts_q3;
          Alcotest.test_case "oracle <= Selinger" `Quick test_exhaustive_optimize_not_above_selinger;
          Alcotest.test_case "rejects oversize inputs" `Quick test_exhaustive_rejects_oversize;
        ] );
      ( "interned",
        [
          Alcotest.test_case "ids and masks round-trip" `Quick test_interned_roundtrip;
          Alcotest.test_case "adjacency matches the join graph" `Quick
            test_interned_adjacency_matches_graph;
          Alcotest.test_case "connectivity matches the join graph" `Quick
            test_interned_connected_matches_graph;
          Alcotest.test_case "input validation" `Quick test_interned_validation;
          Alcotest.test_case "subsets_of_size matches brute force" `Quick
            test_interned_subsets_of_size;
          Alcotest.test_case "fold_splits matches the inline loop" `Quick
            test_interned_fold_splits;
          Alcotest.test_case "masked Selinger bit-identical" `Quick
            test_masked_selinger_bit_identical;
          Alcotest.test_case "masked pruned Selinger bit-identical" `Quick
            test_masked_selinger_pruned_bit_identical;
          Alcotest.test_case "masked DPsub bit-identical" `Quick test_masked_dpsub_bit_identical;
          Alcotest.test_case "masked randomized bit-identical" `Quick
            test_masked_randomized_bit_identical;
          Alcotest.test_case "masked memoization bit-identical" `Quick
            test_masked_memoize_bit_identical;
          Alcotest.test_case "masked RAQO coster bit-identical" `Quick
            test_masked_raqo_coster_bit_identical;
          Alcotest.test_case "public entry points = references" `Quick
            test_masked_public_entry_points_agree;
          Alcotest.test_case "relation caps preserved" `Quick test_masked_caps_preserved;
        ]
        @ qsuite [ prop_masked_selinger_matches_reference ] );
      ( "heuristics",
        [
          Alcotest.test_case "greedy left-deep is valid" `Quick test_greedy_left_deep_valid;
          Alcotest.test_case "greedy starts at the smallest table" `Quick
            test_greedy_starts_smallest;
          Alcotest.test_case "default plan uses the stock rule" `Quick
            test_default_plan_uses_stock_rule;
        ] );
    ]
