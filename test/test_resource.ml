(* Tests for Raqo_resource: brute force, hill climbing (Algorithm 1), the
   resource-plan cache, and the orchestrating resource planner. *)

module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions
module Counters = Raqo_resource.Counters
module Brute_force = Raqo_resource.Brute_force
module Hill_climb = Raqo_resource.Hill_climb
module Plan_cache = Raqo_resource.Plan_cache
module Resource_planner = Raqo_resource.Resource_planner

let res nc gb = Resources.make ~containers:nc ~container_gb:gb

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* A smooth convex bowl with minimum at (nc_opt, gb_opt): hill climbing must
   find the exact brute-force optimum on it. *)
let bowl ~nc_opt ~gb_opt (r : Resources.t) =
  let dn = float_of_int (r.containers - nc_opt) in
  let dg = r.container_gb -. gb_opt in
  (dn *. dn) +. (10.0 *. dg *. dg)

(* ----------------------------------------------------------- Brute force *)

let test_brute_force_finds_minimum () =
  let c = Conditions.default in
  let best, cost = Brute_force.search c (bowl ~nc_opt:37 ~gb_opt:6.0) in
  Alcotest.(check int) "containers" 37 best.Resources.containers;
  check_float "memory" 6.0 best.Resources.container_gb;
  check_float "cost" 0.0 cost

let test_brute_force_counts_every_config () =
  let c = Conditions.default in
  let k = Counters.create () in
  let _ = Brute_force.search ~counters:k c (bowl ~nc_opt:1 ~gb_opt:1.0) in
  Alcotest.(check int) "explored all 1000" 1000 (Counters.cost_evaluations k);
  Alcotest.(check int) "one invocation" 1 (Counters.planner_invocations k)

let test_brute_force_tie_break_stable () =
  (* Constant surface: returns the first enumerated config. *)
  let c = Conditions.default in
  let best, _ = Brute_force.search c (fun _ -> 1.0) in
  Alcotest.(check int) "min containers" 1 best.Resources.containers;
  check_float "min memory" 1.0 best.Resources.container_gb

(* --------------------------------------------------- Pruned brute force *)

module Op_cost = Raqo_cost.Op_cost
module Join_impl = Raqo_plan.Join_impl

let model = Op_cost.with_floor 0.01 Op_cost.paper
let op_cost impl ~small_gb r = Op_cost.predict_exn model impl ~small_gb ~resources:r

let op_bound impl ~small_gb =
  match Op_cost.region_lower_bound model impl ~small_gb with
  | Some b -> b
  | None -> Alcotest.failf "no region bound for %s" (Join_impl.to_string impl)

let test_pruned_matches_exhaustive () =
  (* Exact equality — configuration (ties included) and cost — on the
     paper's default 1000-config grid, across both operators and data sizes
     spanning the BHJ feasibility cliff. *)
  let c = Conditions.default in
  List.iter
    (fun impl ->
      List.iter
        (fun small_gb ->
          let cost = op_cost impl ~small_gb in
          let exhaustive = Brute_force.search c cost in
          let pruned =
            Brute_force.search_pruned c ~bound:(op_bound impl ~small_gb) cost
          in
          if pruned <> exhaustive then
            Alcotest.failf "%s small_gb=%g: pruned differs from exhaustive"
              (Join_impl.to_string impl) small_gb)
        [ 0.1; 0.5; 1.0; 2.0; 3.0; 6.0; 8.0; 25.0 ])
    Join_impl.all

let test_pruned_five_x_fewer_evals () =
  (* The acceptance bar: branch-and-bound must cost <= 1/5 of the grid. *)
  let c = Conditions.default in
  let exhaustive = ref 0 and pruned = ref 0 in
  List.iter
    (fun impl ->
      List.iter
        (fun small_gb ->
          let ke = Counters.create () and kp = Counters.create () in
          let cost = op_cost impl ~small_gb in
          let _ = Brute_force.search ~counters:ke c cost in
          let _ =
            Brute_force.search_pruned ~counters:kp c
              ~bound:(op_bound impl ~small_gb) cost
          in
          exhaustive := !exhaustive + Counters.cost_evaluations ke;
          pruned := !pruned + Counters.cost_evaluations kp)
        [ 0.5; 2.0; 6.0 ])
    Join_impl.all;
  Alcotest.(check bool)
    (Printf.sprintf "pruned %d <= exhaustive %d / 5" !pruned !exhaustive)
    true
    (!pruned * 5 <= !exhaustive)

let test_pruned_bhj_partial_infeasibility () =
  (* A data size feasible only in the upper memory range: the bound must
     price infeasible boxes at infinity without clipping the true optimum. *)
  let c = Conditions.default in
  let small_gb = 6.0 in
  let cost = op_cost Join_impl.Bhj ~small_gb in
  let (re, ce) = Brute_force.search c cost in
  let (rp, cp) =
    Brute_force.search_pruned c ~bound:(op_bound Join_impl.Bhj ~small_gb) cost
  in
  Alcotest.(check bool) "partially feasible surface" true
    (cost (Conditions.min_config c) = Float.infinity && ce < Float.infinity);
  Alcotest.(check bool) "same config" true (Resources.equal re rp);
  Alcotest.(check bool) "same cost" true (ce = cp)

let test_pruned_all_infeasible_degenerate () =
  (* BHJ with an impossibly large build side: every config is infinite, and
     both searches must agree on the first-enumerated config at infinity. *)
  let c = Conditions.default in
  let small_gb = 1e6 in
  let cost = op_cost Join_impl.Bhj ~small_gb in
  Alcotest.(check bool) "all infeasible" true
    (cost (Conditions.max_config c) = Float.infinity);
  let (re, ce) = Brute_force.search c cost in
  let (rp, cp) =
    Brute_force.search_pruned c ~bound:(op_bound Join_impl.Bhj ~small_gb) cost
  in
  Alcotest.(check bool) "infinite cost" true (ce = Float.infinity && cp = Float.infinity);
  Alcotest.(check bool) "same config" true (Resources.equal re rp);
  Alcotest.(check int) "first config" 1 rp.Resources.containers;
  check_float "first config memory" 1.0 rp.Resources.container_gb

let prop_pruned_matches_exhaustive_random_grids =
  QCheck.Test.make ~name:"pruned search equals exhaustive on random grids" ~count:50
    QCheck.(triple (int_range 1 60) (int_range 1 12) (float_range 0.05 20.0))
    (fun (ncs, ngbs, small_gb) ->
      let c = Conditions.make ~max_containers:ncs ~max_gb:(float_of_int ngbs) () in
      List.for_all
        (fun impl ->
          let cost = op_cost impl ~small_gb in
          Brute_force.search c cost
          = Brute_force.search_pruned c ~bound:(op_bound impl ~small_gb) cost)
        Join_impl.all)

(* ---------------------------------------------------------- Hill climbing *)

let test_hill_climb_convex_exact () =
  let c = Conditions.default in
  let best, cost = Hill_climb.plan c (bowl ~nc_opt:37 ~gb_opt:6.0) in
  Alcotest.(check int) "containers" 37 best.Resources.containers;
  check_float "memory" 6.0 best.Resources.container_gb;
  check_float "cost" 0.0 cost

let test_hill_climb_explores_fewer_than_brute_force () =
  let c = Conditions.default in
  let kb = Counters.create () and kh = Counters.create () in
  let _ = Brute_force.search ~counters:kb c (bowl ~nc_opt:80 ~gb_opt:9.0) in
  let _ = Hill_climb.plan ~counters:kh c (bowl ~nc_opt:80 ~gb_opt:9.0) in
  Alcotest.(check bool)
    (Printf.sprintf "HC %d < BF %d" (Counters.cost_evaluations kh)
       (Counters.cost_evaluations kb))
    true
    (Counters.cost_evaluations kh < Counters.cost_evaluations kb)

let test_hill_climb_starts_at_minimum_config () =
  (* A monotone increasing surface keeps the climb at the start point. *)
  let c = Conditions.default in
  let best, _ = Hill_climb.plan c (fun r -> Resources.total_gb r) in
  Alcotest.(check int) "stays at min containers" 1 best.Resources.containers;
  check_float "stays at min memory" 1.0 best.Resources.container_gb

let test_hill_climb_custom_start () =
  let c = Conditions.default in
  let best, _ =
    Hill_climb.plan ~start:(res 50 5.0) c (fun r -> Resources.total_gb r)
  in
  (* Decreasing from (50,5): walks all the way down. *)
  Alcotest.(check int) "walks down containers" 1 best.Resources.containers;
  check_float "walks down memory" 1.0 best.Resources.container_gb

let test_hill_climb_start_clamped () =
  let c = Conditions.make ~max_containers:10 ~max_gb:4.0 () in
  let best, _ = Hill_climb.plan ~start:(res 5000 50.0) c (fun r -> Resources.total_gb r) in
  Alcotest.(check bool) "within bounds" true (Conditions.contains c best)

let test_hill_climb_respects_bounds () =
  (* Minimum outside the box: the climb saturates at the boundary. *)
  let c = Conditions.make ~max_containers:10 ~max_gb:4.0 () in
  let best, _ = Hill_climb.plan c (bowl ~nc_opt:50 ~gb_opt:9.0) in
  Alcotest.(check int) "saturates containers" 10 best.Resources.containers;
  check_float "saturates memory" 4.0 best.Resources.container_gb

let test_hill_climb_local_optimum_on_infinite_plateau () =
  (* Infeasible (infinite) surface everywhere: terminates at the start. *)
  let c = Conditions.default in
  let best, cost = Hill_climb.plan c (fun _ -> Float.infinity) in
  Alcotest.(check int) "start point" 1 best.Resources.containers;
  Alcotest.(check bool) "infinite cost reported" true (cost = Float.infinity)

let prop_hill_climb_result_within_conditions =
  QCheck.Test.make ~name:"hill climb stays within cluster conditions" ~count:100
    QCheck.(triple (int_range 1 80) (int_range 1 10) (int_range 0 1000))
    (fun (nc_opt, gb_opt, seed) ->
      ignore seed;
      let c = Conditions.default in
      let best, _ = Hill_climb.plan c (bowl ~nc_opt ~gb_opt:(float_of_int gb_opt)) in
      Conditions.contains c best)

let prop_hill_climb_is_local_optimum =
  QCheck.Test.make ~name:"hill climb result is a 1-step local optimum" ~count:100
    QCheck.(pair (int_range 1 100) (int_range 1 10))
    (fun (nc_opt, gb_opt) ->
      let c = Conditions.default in
      let f = bowl ~nc_opt ~gb_opt:(float_of_int gb_opt) in
      let best, cost = Hill_climb.plan c f in
      let neighbors =
        List.filter_map
          (fun (dn, dg) ->
            let nc = best.Resources.containers + dn in
            let gb = best.Resources.container_gb +. dg in
            if nc >= 1 && nc <= 100 && gb >= 1.0 && gb <= 10.0 then
              Some (res nc gb)
            else None)
          [ (1, 0.0); (-1, 0.0); (0, 1.0); (0, -1.0) ]
      in
      List.for_all (fun n -> f n >= cost -. 1e-9) neighbors)

let prop_hill_climb_never_beats_brute_force =
  QCheck.Test.make ~name:"brute force <= hill climb on arbitrary surfaces" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      (* A deterministic pseudo-random (non-convex) surface. *)
      let f (r : Resources.t) =
        let h =
          (r.containers * 2654435761) + (int_of_float r.container_gb * 40503) + seed
        in
        float_of_int (h land 0xFFFF)
      in
      let c = Conditions.make ~max_containers:20 ~max_gb:5.0 () in
      let _, bf = Brute_force.search c f in
      let _, hc = Hill_climb.plan c f in
      bf <= hc +. 1e-9)

(* ------------------------------------------------------------ Plan cache *)

let test_cache_exact_hit_miss () =
  let cache = Plan_cache.create () in
  Plan_cache.insert cache ~key:"smj" ~data_gb:3.0 (res 10 2.0);
  (match Plan_cache.find cache ~key:"smj" ~data_gb:3.0 Plan_cache.Exact with
  | Some r -> Alcotest.(check int) "hit" 10 r.Resources.containers
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "miss on other size" true
    (Plan_cache.find cache ~key:"smj" ~data_gb:3.1 Plan_cache.Exact = None);
  Alcotest.(check bool) "miss on other key" true
    (Plan_cache.find cache ~key:"bhj" ~data_gb:3.0 Plan_cache.Exact = None)

let test_cache_overwrite () =
  let cache = Plan_cache.create () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 1 1.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 9 9.0);
  (match Plan_cache.find cache ~key:"k" ~data_gb:1.0 Plan_cache.Exact with
  | Some r -> Alcotest.(check int) "overwritten" 9 r.Resources.containers
  | None -> Alcotest.fail "hit expected");
  Alcotest.(check int) "still one entry" 1 (Plan_cache.size cache)

let test_cache_nearest_neighbor () =
  let cache = Plan_cache.create () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 10 1.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:2.0 (res 20 2.0);
  (match Plan_cache.find cache ~key:"k" ~data_gb:1.9 (Plan_cache.Nearest_neighbor 0.5) with
  | Some r -> Alcotest.(check int) "closest is 2.0" 20 r.Resources.containers
  | None -> Alcotest.fail "hit expected");
  Alcotest.(check bool) "outside threshold misses" true
    (Plan_cache.find cache ~key:"k" ~data_gb:3.0 (Plan_cache.Nearest_neighbor 0.5) = None)

let test_cache_weighted_average () =
  let cache = Plan_cache.create () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 10 2.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:3.0 (res 30 4.0);
  match Plan_cache.find cache ~key:"k" ~data_gb:2.0 (Plan_cache.Weighted_average 1.5) with
  | Some r ->
      (* Equidistant: plain average. *)
      Alcotest.(check int) "containers averaged" 20 r.Resources.containers;
      check_float "memory averaged" 3.0 r.Resources.container_gb
  | None -> Alcotest.fail "hit expected"

let test_cache_weighted_average_prefers_exact () =
  let cache = Plan_cache.create () in
  Plan_cache.insert cache ~key:"k" ~data_gb:2.0 (res 7 7.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:2.5 (res 9 9.0);
  match Plan_cache.find cache ~key:"k" ~data_gb:2.0 (Plan_cache.Weighted_average 1.0) with
  | Some r -> Alcotest.(check int) "exact wins" 7 r.Resources.containers
  | None -> Alcotest.fail "hit expected"

let test_cache_weighted_average_epsilon_exact_guard () =
  (* Regression: a key within radius but only float-[=]-unequal to [data_gb]
     used to get inverse-distance weight 1/d with d a few ulps, swamping all
     other entries through a lossy blend. The epsilon guard must treat it as
     an exact hit and return it verbatim. *)
  let cache = Plan_cache.create () in
  let near_exact = Float.succ 2.0 in
  Plan_cache.insert cache ~key:"k" ~data_gb:near_exact (res 8 4.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:2.5 (res 2 1.0);
  match Plan_cache.find cache ~key:"k" ~data_gb:2.0 (Plan_cache.Weighted_average 1.0) with
  | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "near-exact entry returned verbatim (got %s)" (Resources.to_string r))
        true
        (Resources.equal r (res 8 4.0))
  | None -> Alcotest.fail "hit expected"

let test_cache_weighted_average_denormal_distance () =
  (* Regression: with an unguarded 1/d, a denormal distance overflows the
     weight to infinity and the average to nan, which [Resources.make]
     rejects — the lookup used to raise instead of answering. *)
  let cache = Plan_cache.create () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1e-310 (res 8 4.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:0.3 (res 2 1.0);
  match Plan_cache.find cache ~key:"k" ~data_gb:0.0 (Plan_cache.Weighted_average 0.5) with
  | Some r -> Alcotest.(check bool) "near-exact entry wins" true (Resources.equal r (res 8 4.0))
  | None -> Alcotest.fail "hit expected"

let test_cache_resizes_past_initial_capacity () =
  let cache = Plan_cache.create () in
  for i = 1 to 100 do
    Plan_cache.insert cache ~key:"k" ~data_gb:(float_of_int i) (res i 1.0)
  done;
  Alcotest.(check int) "100 entries" 100 (Plan_cache.size cache);
  (* Every entry still findable after the resizes and shifting. *)
  for i = 1 to 100 do
    match Plan_cache.find cache ~key:"k" ~data_gb:(float_of_int i) Plan_cache.Exact with
    | Some r -> Alcotest.(check int) "right plan" i r.Resources.containers
    | None -> Alcotest.failf "entry %d lost" i
  done

let test_cache_insert_random_order_stays_sorted () =
  let cache = Plan_cache.create () in
  let rng = Raqo_util.Rng.create 5 in
  let sizes = Array.init 50 (fun i -> float_of_int (i + 1)) in
  Raqo_util.Rng.shuffle rng sizes;
  Array.iter (fun s -> Plan_cache.insert cache ~key:"k" ~data_gb:s (res 1 1.0)) sizes;
  (* Nearest-neighbor across the whole range works iff ordering is intact. *)
  match Plan_cache.find cache ~key:"k" ~data_gb:25.4 (Plan_cache.Nearest_neighbor 1.0) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected neighbor"

let test_cache_clear () =
  let cache = Plan_cache.create () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 1 1.0);
  Plan_cache.clear cache;
  Alcotest.(check int) "empty" 0 (Plan_cache.size cache)

let test_cache_counters () =
  let cache = Plan_cache.create () in
  let k = Counters.create () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 1 1.0);
  ignore (Plan_cache.find ~counters:k cache ~key:"k" ~data_gb:1.0 Plan_cache.Exact);
  ignore (Plan_cache.find ~counters:k cache ~key:"k" ~data_gb:9.0 Plan_cache.Exact);
  Alcotest.(check int) "one hit" 1 (Counters.cache_hits k);
  Alcotest.(check int) "one miss" 1 (Counters.cache_misses k)

let prop_cache_wa_within_neighbor_hull =
  (* Weighted averages stay inside the bounding box of the neighbors they
     average. *)
  QCheck.Test.make ~name:"WA results lie within the neighbor hull" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 2 20) (int_range 1 100)) (int_range 1 100))
    (fun (entries, probe) ->
      let cache = Plan_cache.create () in
      List.iter
        (fun c -> Plan_cache.insert cache ~key:"k" ~data_gb:(float_of_int c) (res c (float_of_int (1 + (c mod 10)))))
        entries;
      let threshold = 10.0 in
      match
        Plan_cache.find cache ~key:"k" ~data_gb:(float_of_int probe)
          (Plan_cache.Weighted_average threshold)
      with
      | None -> true
      | Some r ->
          let close =
            List.filter (fun c -> Float.abs (float_of_int (c - probe)) <= threshold) entries
          in
          let lo = List.fold_left min max_int close and hi = List.fold_left max 0 close in
          r.Resources.containers >= lo - 1 && r.Resources.containers <= hi + 1)

let prop_cache_nn_within_threshold =
  QCheck.Test.make ~name:"NN hits are within the threshold" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_range 0.0 50.0)) (float_range 0.0 50.0))
    (fun (inserts, probe) ->
      let cache = Plan_cache.create () in
      List.iteri
        (fun i s -> Plan_cache.insert cache ~key:"k" ~data_gb:s (res (i + 1) 1.0))
        inserts;
      let threshold = 2.0 in
      match Plan_cache.find cache ~key:"k" ~data_gb:probe (Plan_cache.Nearest_neighbor threshold) with
      | Some _ -> List.exists (fun s -> Float.abs (s -. probe) <= threshold) inserts
      | None -> not (List.exists (fun s -> Float.abs (s -. probe) <= threshold) inserts))

(* --------------------------------------------------------- Ordered_index *)

module Ordered_index = Raqo_resource.Ordered_index

let both_backends f =
  List.iter (fun b -> f b) [ Ordered_index.Sorted_array; Ordered_index.Btree ]

let test_index_insert_find () =
  both_backends (fun backend ->
      let idx = Ordered_index.create backend in
      Ordered_index.insert idx 3.0 "c";
      Ordered_index.insert idx 1.0 "a";
      Ordered_index.insert idx 2.0 "b";
      Alcotest.(check (option string)) "find 2" (Some "b") (Ordered_index.find_exact idx 2.0);
      Alcotest.(check (option string)) "miss" None (Ordered_index.find_exact idx 2.5);
      Alcotest.(check int) "size" 3 (Ordered_index.size idx))

let test_index_overwrite () =
  both_backends (fun backend ->
      let idx = Ordered_index.create backend in
      Ordered_index.insert idx 1.0 "old";
      Ordered_index.insert idx 1.0 "new";
      Alcotest.(check (option string)) "overwritten" (Some "new")
        (Ordered_index.find_exact idx 1.0);
      Alcotest.(check int) "size 1" 1 (Ordered_index.size idx))

let test_index_within () =
  both_backends (fun backend ->
      let idx = Ordered_index.create backend in
      List.iter (fun k -> Ordered_index.insert idx k (string_of_float k)) [ 1.;2.;3.;4.;5. ];
      let hits = Ordered_index.within idx ~center:3.0 ~radius:1.0 in
      Alcotest.(check (list (float 1e-9))) "keys 2..4" [ 2.0; 3.0; 4.0 ] (List.map fst hits))

let test_index_ordered_iteration () =
  both_backends (fun backend ->
      let idx = Ordered_index.create backend in
      let rng = Raqo_util.Rng.create 3 in
      let keys = Array.init 500 (fun i -> float_of_int i) in
      Raqo_util.Rng.shuffle rng keys;
      Array.iter (fun k -> Ordered_index.insert idx k ()) keys;
      Alcotest.(check int) "all present" 500 (Ordered_index.size idx);
      let listed = List.map fst (Ordered_index.to_list idx) in
      Alcotest.(check (list (float 1e-9))) "sorted"
        (List.init 500 float_of_int) listed)

let test_btree_large_scale () =
  (* Enough entries to force several levels of splits. *)
  let idx = Ordered_index.create Ordered_index.Btree in
  for i = 1 to 20_000 do
    Ordered_index.insert idx (float_of_int ((i * 7919) mod 100_003)) i
  done;
  (* 7919 and 100003 are coprime: all keys distinct. *)
  Alcotest.(check int) "20k entries" 20_000 (Ordered_index.size idx);
  (* Every inserted key is findable. *)
  for i = 1 to 100 do
    let k = float_of_int ((i * 7919) mod 100_003) in
    match Ordered_index.find_exact idx k with
    | Some _ -> ()
    | None -> Alcotest.failf "lost key %f" k
  done

let test_index_nearest_basic () =
  both_backends (fun backend ->
      let idx = Ordered_index.create backend in
      Alcotest.(check (option (pair (float 1e-9) string))) "empty" None
        (Ordered_index.nearest idx ~center:1.0 ~radius:10.0);
      Ordered_index.insert idx 5.0 "five";
      Alcotest.(check (option (pair (float 1e-9) string))) "single within radius"
        (Some (5.0, "five"))
        (Ordered_index.nearest idx ~center:4.6 ~radius:0.5);
      Alcotest.(check (option (pair (float 1e-9) string))) "single outside radius" None
        (Ordered_index.nearest idx ~center:3.0 ~radius:0.5))

let test_index_nearest_tie_goes_to_lower_key () =
  both_backends (fun backend ->
      let idx = Ordered_index.create backend in
      Ordered_index.insert idx 2.0 "lo";
      Ordered_index.insert idx 4.0 "hi";
      match Ordered_index.nearest idx ~center:3.0 ~radius:5.0 with
      | Some (k, v) ->
          check_float "lower key wins the tie" 2.0 k;
          Alcotest.(check string) "its value" "lo" v
      | None -> Alcotest.fail "hit expected")

let test_index_nearest_btree_across_leaves () =
  (* Enough keys for several leaf splits; every probe sits exactly between
     two keys, so ties must resolve to the lower one across leaf
     boundaries. *)
  let idx = Ordered_index.create Ordered_index.Btree in
  for i = 0 to 999 do
    Ordered_index.insert idx (float_of_int (2 * i)) i
  done;
  for p = 0 to 500 do
    let center = float_of_int (2 * p) +. 1.0 in
    match Ordered_index.nearest idx ~center ~radius:2.0 with
    | Some (k, _) -> check_float "tie to lower" (float_of_int (2 * p)) k
    | None -> Alcotest.fail "hit expected"
  done

let prop_nearest_matches_linear_scan =
  QCheck.Test.make ~name:"nearest equals a linear scan with lower-key ties" ~count:100
    QCheck.(
      triple
        (list_of_size Gen.(int_range 0 60) (int_range 0 100))
        (int_range 0 100) (int_range 0 20))
    (fun (keys, probe, radius) ->
      let center = float_of_int probe and radius = float_of_int radius in
      List.for_all
        (fun backend ->
          let idx = Ordered_index.create backend in
          List.iter (fun k -> Ordered_index.insert idx (float_of_int k) k) keys;
          let expected =
            (* to_list is ascending, so keeping the first minimum reproduces
               the tie-to-lower-key contract. *)
            List.fold_left
              (fun acc (k, v) ->
                let d = Float.abs (k -. center) in
                match acc with
                | None -> if d <= radius then Some (k, v) else None
                | Some (bk, _) ->
                    if d <= radius && d < Float.abs (bk -. center) then Some (k, v)
                    else acc)
              None (Ordered_index.to_list idx)
          in
          Ordered_index.nearest idx ~center ~radius = expected)
        [ Ordered_index.Sorted_array; Ordered_index.Btree ])

let prop_backends_agree =
  (* Random (insert | lookup | range) traces produce identical results on
     both backends. *)
  QCheck.Test.make ~name:"sorted array and B+-tree agree" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 200) (pair (int_range 0 100) (int_range 0 2)))
    (fun ops ->
      let a = Ordered_index.create Ordered_index.Sorted_array in
      let b = Ordered_index.create Ordered_index.Btree in
      List.for_all
        (fun (k, op) ->
          let key = float_of_int k in
          match op with
          | 0 ->
              Ordered_index.insert a key k;
              Ordered_index.insert b key k;
              true
          | 1 -> Ordered_index.find_exact a key = Ordered_index.find_exact b key
          | _ ->
              Ordered_index.within a ~center:key ~radius:5.0
              = Ordered_index.within b ~center:key ~radius:5.0)
        ops
      && Ordered_index.to_list a = Ordered_index.to_list b)

let test_cache_btree_backend () =
  let cache = Plan_cache.create ~backend:Ordered_index.Btree () in
  for i = 1 to 300 do
    Plan_cache.insert cache ~key:"k" ~data_gb:(float_of_int i) (res i 1.0)
  done;
  Alcotest.(check int) "300 entries" 300 (Plan_cache.size cache);
  match Plan_cache.find cache ~key:"k" ~data_gb:150.2 (Plan_cache.Nearest_neighbor 0.5) with
  | Some r -> Alcotest.(check int) "nearest" 150 r.Resources.containers
  | None -> Alcotest.fail "hit expected"

(* ------------------------------------------------------ Resource_planner *)

let test_planner_cache_flow () =
  let planner = Resource_planner.create Conditions.default in
  let f = bowl ~nc_opt:20 ~gb_opt:5.0 in
  let r1, c1 = Resource_planner.plan planner ~key:"smj/join" ~data_gb:3.0 ~cost:f in
  let evals_after_first = Counters.cost_evaluations (Resource_planner.counters planner) in
  let r2, c2 = Resource_planner.plan planner ~key:"smj/join" ~data_gb:3.0 ~cost:f in
  let evals_after_second = Counters.cost_evaluations (Resource_planner.counters planner) in
  Alcotest.(check bool) "same result" true (Resources.equal r1 r2);
  check_float "same cost" c1 c2;
  Alcotest.(check int) "hit costs exactly one eval" (evals_after_first + 1) evals_after_second;
  Alcotest.(check int) "one hit" 1 (Counters.cache_hits (Resource_planner.counters planner))

let test_planner_no_cache_recomputes () =
  let planner = Resource_planner.create ~cache:false Conditions.default in
  let f = bowl ~nc_opt:20 ~gb_opt:5.0 in
  let _ = Resource_planner.plan planner ~key:"k" ~data_gb:3.0 ~cost:f in
  let e1 = Counters.cost_evaluations (Resource_planner.counters planner) in
  let _ = Resource_planner.plan planner ~key:"k" ~data_gb:3.0 ~cost:f in
  let e2 = Counters.cost_evaluations (Resource_planner.counters planner) in
  Alcotest.(check bool) "full recompute" true (e2 - e1 > 1)

let test_planner_nn_lookup_reuses_neighbor () =
  let planner =
    Resource_planner.create ~lookup:(Plan_cache.Nearest_neighbor 0.5) Conditions.default
  in
  let f = bowl ~nc_opt:20 ~gb_opt:5.0 in
  let _ = Resource_planner.plan planner ~key:"k" ~data_gb:3.0 ~cost:f in
  let _ = Resource_planner.plan planner ~key:"k" ~data_gb:3.2 ~cost:f in
  Alcotest.(check int) "neighbor hit" 1 (Counters.cache_hits (Resource_planner.counters planner))

let test_planner_brute_force_strategy () =
  let planner =
    Resource_planner.create ~strategy:Resource_planner.Brute_force ~cache:false
      Conditions.default
  in
  let _ = Resource_planner.plan planner ~key:"k" ~data_gb:1.0 ~cost:(bowl ~nc_opt:3 ~gb_opt:2.0) in
  Alcotest.(check int) "explored all" 1000
    (Counters.cost_evaluations (Resource_planner.counters planner))

let test_planner_with_conditions_shares_cache () =
  let planner = Resource_planner.create Conditions.default in
  let f = bowl ~nc_opt:20 ~gb_opt:5.0 in
  let _ = Resource_planner.plan planner ~key:"k" ~data_gb:3.0 ~cost:f in
  let small = Conditions.make ~max_containers:10 ~max_gb:3.0 () in
  let planner2 = Resource_planner.with_conditions planner small in
  (* The stale cached plan (20 containers) must be clamped into the new
     conditions on reuse. *)
  let r, _ = Resource_planner.plan planner2 ~key:"k" ~data_gb:3.0 ~cost:f in
  Alcotest.(check bool) "clamped into new bounds" true (Conditions.contains small r)

let test_planner_reset () =
  let planner = Resource_planner.create Conditions.default in
  let f = bowl ~nc_opt:20 ~gb_opt:5.0 in
  let _ = Resource_planner.plan planner ~key:"k" ~data_gb:3.0 ~cost:f in
  Resource_planner.reset_counters planner;
  Resource_planner.clear_cache planner;
  Alcotest.(check int) "counters zeroed" 0
    (Counters.cost_evaluations (Resource_planner.counters planner));
  Alcotest.(check int) "cache emptied" 0 (Resource_planner.cache_size planner)

let test_planner_pruned_brute_force () =
  (* With ~pruned:true and a bound, the planner must return the exhaustive
     optimum while evaluating a fraction of the 1000-config grid. *)
  let planner =
    Resource_planner.create ~strategy:Resource_planner.Brute_force ~pruned:true
      ~cache:false Conditions.default
  in
  Alcotest.(check bool) "pruned flag" true (Resource_planner.pruned planner);
  let small_gb = 2.0 in
  let cost = op_cost Join_impl.Smj ~small_gb in
  let baseline, baseline_cost = Brute_force.search Conditions.default cost in
  let r, c =
    Resource_planner.plan planner
      ~bound:(op_bound Join_impl.Smj ~small_gb)
      ~key:"smj/join" ~data_gb:small_gb ~cost
  in
  Alcotest.(check bool) "same config as exhaustive" true (Resources.equal r baseline);
  check_float "same cost" baseline_cost c;
  let evals = Counters.cost_evaluations (Resource_planner.counters planner) in
  Alcotest.(check bool)
    (Printf.sprintf "pruned evals %d <= 1000 / 5" evals)
    true (evals * 5 <= 1000)

let test_planner_pruned_without_bound_stays_exhaustive () =
  let planner =
    Resource_planner.create ~strategy:Resource_planner.Brute_force ~pruned:true
      ~cache:false Conditions.default
  in
  let _ =
    Resource_planner.plan planner ~key:"k" ~data_gb:1.0 ~cost:(bowl ~nc_opt:3 ~gb_opt:2.0)
  in
  Alcotest.(check int) "full grid without a bound" 1000
    (Counters.cost_evaluations (Resource_planner.counters planner))

let test_counters_add () =
  let a = Counters.create () and b = Counters.create () in
  Counters.record_evaluations a 3;
  Counters.record_evaluations b 4;
  Counters.record_hit b;
  Counters.add ~into:a b;
  Alcotest.(check int) "evals" 7 (Counters.cost_evaluations a);
  Alcotest.(check int) "hits" 1 (Counters.cache_hits a)

(* ------------------------------------------------------ compiled kernels *)

module Kernel = Raqo_cost.Kernel

let kernel_of ?(model = model) impl ~small_gb =
  match Kernel.make model impl ~small_gb with
  | Some k -> k
  | None -> Alcotest.failf "no kernel for %s" (Join_impl.to_string impl)

let test_search_kernel_matches_scalar () =
  let c = Conditions.default in
  let scratch = Kernel.create_scratch () in
  List.iter
    (fun impl ->
      List.iter
        (fun small_gb ->
          let ks = Counters.create () and ss = Counters.create () in
          let kernel = kernel_of impl ~small_gb in
          let swept = Brute_force.search_kernel ~counters:ks c ~kernel ~scratch in
          let scanned = Brute_force.search ~counters:ss c (op_cost impl ~small_gb) in
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %.1f GB identical" (Join_impl.to_string impl) small_gb)
            true (swept = scanned);
          Alcotest.(check int) "same evaluation count" (Counters.cost_evaluations ss)
            (Counters.cost_evaluations ks))
        [ 0.1; 2.0; 7.5; 1e6 ])
    Join_impl.all

let test_search_kernel_tie_break_on_plateau () =
  (* A huge floor flattens the whole grid to one constant: the sweep's argmin
     scan must keep search's first-enumerated winner. *)
  let plateau = Op_cost.with_floor 1e12 Op_cost.paper in
  let c = Conditions.default in
  let kernel = kernel_of ~model:plateau Join_impl.Smj ~small_gb:1.0 in
  let swept =
    Brute_force.search_kernel c ~kernel ~scratch:(Kernel.create_scratch ())
  in
  let scanned =
    Brute_force.search c (fun r ->
        Op_cost.predict_exn plateau Join_impl.Smj ~small_gb:1.0 ~resources:r)
  in
  Alcotest.(check bool) "same winner on the plateau" true (swept = scanned);
  Alcotest.(check int) "first config" 1 (fst swept).Resources.containers

let test_search_pruned_kernel_matches_scalar () =
  let c = Conditions.default in
  let scratch = Kernel.create_scratch () in
  List.iter
    (fun impl ->
      List.iter
        (fun small_gb ->
          let kp = Counters.create () and sp = Counters.create () in
          let kernel = kernel_of impl ~small_gb in
          let kerneled = Brute_force.search_pruned_kernel ~counters:kp c ~kernel ~scratch in
          let scalar =
            Brute_force.search_pruned ~counters:sp c ~bound:(op_bound impl ~small_gb)
              (op_cost impl ~small_gb)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %.1f GB identical" (Join_impl.to_string impl) small_gb)
            true (kerneled = scalar);
          Alcotest.(check int) "identical distinct-evaluation count"
            (Counters.cost_evaluations sp) (Counters.cost_evaluations kp))
        [ 0.1; 2.0; 7.5; 1e6 ])
    Join_impl.all

let prop_kernel_searches_match_scalar_random_grids =
  QCheck.Test.make ~name:"kernel searches equal scalar searches on random grids" ~count:50
    QCheck.(triple (int_range 1 60) (int_range 1 12) (float_range 0.05 20.0))
    (fun (ncs, ngbs, small_gb) ->
      let c = Conditions.make ~max_containers:ncs ~max_gb:(float_of_int ngbs) () in
      let scratch = Kernel.create_scratch () in
      List.for_all
        (fun impl ->
          let kernel = kernel_of impl ~small_gb in
          let cost = op_cost impl ~small_gb in
          Brute_force.search_kernel c ~kernel ~scratch = Brute_force.search c cost
          && Brute_force.search_pruned_kernel c ~kernel ~scratch
             = Brute_force.search_pruned c ~bound:(op_bound impl ~small_gb) cost)
        Join_impl.all)

let test_hill_climb_kernel_matches_scalar () =
  let c = Conditions.default in
  List.iter
    (fun impl ->
      List.iter
        (fun small_gb ->
          List.iter
            (fun start ->
              let kc = Counters.create () and sc = Counters.create () in
              let kernel = kernel_of impl ~small_gb in
              let k = Hill_climb.plan_kernel ~counters:kc ?start c kernel in
              let s = Hill_climb.plan ~counters:sc ?start c (op_cost impl ~small_gb) in
              Alcotest.(check bool)
                (Printf.sprintf "%s @ %.1f GB same climb" (Join_impl.to_string impl) small_gb)
                true (k = s);
              Alcotest.(check int) "same evaluations" (Counters.cost_evaluations sc)
                (Counters.cost_evaluations kc))
            [ None; Some (res 50 5.0); Some (res 100 10.0) ])
        [ 0.1; 2.0; 7.5 ])
    Join_impl.all

(* --------------------------------------------------- LRU-bounded cache *)

let test_cache_capacity_validates () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Plan_cache.create: capacity must be >= 1") (fun () ->
      ignore (Plan_cache.create ~capacity:0 ()))

let test_cache_unbounded_by_default () =
  let cache = Plan_cache.create () in
  Alcotest.(check bool) "no capacity" true (Plan_cache.capacity cache = None);
  for i = 1 to 100 do
    Plan_cache.insert cache ~key:"k" ~data_gb:(float_of_int i) (res i 1.0)
  done;
  Alcotest.(check int) "everything retained" 100 (Plan_cache.size cache)

let test_cache_capacity_evicts_lru () =
  let cache = Plan_cache.create ~capacity:2 () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 1 1.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:2.0 (res 2 2.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:3.0 (res 3 3.0);
  Alcotest.(check int) "bounded" 2 (Plan_cache.size cache);
  Alcotest.(check (list (float 0.0)))
    "oldest evicted" [ 2.0; 3.0 ]
    (List.map fst (Plan_cache.entries cache ~key:"k"))

let test_cache_lookup_refreshes_recency () =
  let cache = Plan_cache.create ~capacity:2 () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 1 1.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:2.0 (res 2 2.0);
  (* Touch 1.0: now 2.0 is the cold entry. *)
  Alcotest.(check bool) "hit" true
    (Plan_cache.find cache ~key:"k" ~data_gb:1.0 Plan_cache.Exact <> None);
  Plan_cache.insert cache ~key:"k" ~data_gb:3.0 (res 3 3.0);
  Alcotest.(check (list (float 0.0)))
    "2.0 evicted, touched 1.0 kept" [ 1.0; 3.0 ]
    (List.map fst (Plan_cache.entries cache ~key:"k"))

let test_cache_nearest_lookup_refreshes_recency () =
  let cache = Plan_cache.create ~capacity:2 () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 1 1.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:2.0 (res 2 2.0);
  (* A nearest-neighbor probe that matches 1.0 must warm that entry. *)
  Alcotest.(check bool) "nn hit" true
    (Plan_cache.find cache ~key:"k" ~data_gb:1.1 (Plan_cache.Nearest_neighbor 0.5) <> None);
  Plan_cache.insert cache ~key:"k" ~data_gb:3.0 (res 3 3.0);
  Alcotest.(check (list (float 0.0)))
    "nn-matched entry survives" [ 1.0; 3.0 ]
    (List.map fst (Plan_cache.entries cache ~key:"k"))

let test_cache_capacity_spans_keys () =
  (* The bound is global across cache keys, and an emptied key disappears. *)
  let cache = Plan_cache.create ~capacity:2 () in
  Plan_cache.insert cache ~key:"a" ~data_gb:1.0 (res 1 1.0);
  Plan_cache.insert cache ~key:"b" ~data_gb:1.0 (res 2 2.0);
  Plan_cache.insert cache ~key:"b" ~data_gb:2.0 (res 3 3.0);
  Alcotest.(check int) "bounded across keys" 2 (Plan_cache.size cache);
  Alcotest.(check (list string)) "key a emptied and dropped" [ "b" ] (Plan_cache.keys cache)

let test_cache_overwrite_does_not_evict () =
  let k = Counters.create () in
  let cache = Plan_cache.create ~capacity:2 () in
  Plan_cache.insert ~counters:k cache ~key:"k" ~data_gb:1.0 (res 1 1.0);
  Plan_cache.insert ~counters:k cache ~key:"k" ~data_gb:2.0 (res 2 2.0);
  Plan_cache.insert ~counters:k cache ~key:"k" ~data_gb:2.0 (res 9 9.0);
  Alcotest.(check int) "still two entries" 2 (Plan_cache.size cache);
  Alcotest.(check int) "no evictions" 0 (Counters.cache_evictions k);
  Alcotest.(check bool) "overwrite took" true
    (Plan_cache.find cache ~key:"k" ~data_gb:2.0 Plan_cache.Exact = Some (res 9 9.0))

let test_cache_eviction_counters () =
  let k = Counters.create () in
  let cache = Plan_cache.create ~capacity:3 () in
  for i = 1 to 10 do
    Plan_cache.insert ~counters:k cache ~key:"k" ~data_gb:(float_of_int i) (res i 1.0)
  done;
  Alcotest.(check int) "bounded" 3 (Plan_cache.size cache);
  Alcotest.(check int) "seven evictions recorded" 7 (Counters.cache_evictions k);
  Alcotest.(check int) "clear resets" 0 (Plan_cache.size (Plan_cache.clear cache; cache))

let prop_cache_capacity_never_exceeded =
  QCheck.Test.make ~name:"bounded cache never exceeds capacity" ~count:100
    QCheck.(
      pair (int_range 1 8)
        (list_of_size Gen.(int_range 1 60) (pair (int_range 0 2) (int_range 1 20))))
    (fun (cap, ops) ->
      let cache = Plan_cache.create ~capacity:cap () in
      let key = function 0 -> "a" | 1 -> "b" | _ -> "c" in
      List.for_all
        (fun (k, v) ->
          Plan_cache.insert cache ~key:(key k) ~data_gb:(float_of_int v) (res v 1.0);
          Plan_cache.size cache <= cap)
        ops)

(* ------------------------------------------------- ordered-index removal *)

let with_index_backends f =
  List.iter
    (fun backend -> f (Ordered_index.create backend))
    [ Ordered_index.Sorted_array; Ordered_index.Btree ]

let test_index_remove_basic () =
  with_index_backends (fun idx ->
      List.iter (fun k -> Ordered_index.insert idx k (int_of_float k)) [ 5.0; 1.0; 3.0 ];
      Alcotest.(check bool) "removes present key" true (Ordered_index.remove idx 3.0);
      Alcotest.(check int) "size drops" 2 (Ordered_index.size idx);
      Alcotest.(check bool) "gone" true (Ordered_index.find_exact idx 3.0 = None);
      Alcotest.(check bool) "missing key is a no-op" false (Ordered_index.remove idx 3.0);
      Alcotest.(check int) "size unchanged" 2 (Ordered_index.size idx);
      Alcotest.(check (list (float 0.0)))
        "order preserved" [ 1.0; 5.0 ]
        (List.map fst (Ordered_index.to_list idx)))

let test_index_remove_btree_across_leaves () =
  (* Enough entries to force leaf splits; removals must stay consistent with
     a reference model even when leaves empty out. *)
  let idx = Ordered_index.create Ordered_index.Btree in
  let n = 200 in
  for i = 0 to n - 1 do
    Ordered_index.insert idx (float_of_int i) i
  done;
  let expected = ref [] in
  for i = n - 1 downto 0 do
    if i mod 3 <> 0 then expected := (float_of_int i, i) :: !expected
    else Alcotest.(check bool) "removed" true (Ordered_index.remove idx (float_of_int i))
  done;
  Alcotest.(check int) "size" (List.length !expected) (Ordered_index.size idx);
  Alcotest.(check bool) "contents" true (Ordered_index.to_list idx = !expected);
  (* Survivors stay findable and re-insertable after their neighbors left. *)
  Alcotest.(check bool) "find survivor" true (Ordered_index.find_exact idx 100.0 = Some 100);
  Ordered_index.insert idx 99.0 (-99);
  Alcotest.(check bool) "reinsert into emptied region" true
    (Ordered_index.find_exact idx 99.0 = Some (-99))

(* -------------------------------------------- nearest: edge-case corpus *)

let test_index_nearest_single_element () =
  with_index_backends (fun idx ->
      Ordered_index.insert idx 5.0 50;
      Alcotest.(check bool) "query below" true
        (Ordered_index.nearest idx ~center:1.0 ~radius:10.0 = Some (5.0, 50));
      Alcotest.(check bool) "query above" true
        (Ordered_index.nearest idx ~center:9.0 ~radius:10.0 = Some (5.0, 50));
      Alcotest.(check bool) "query exact" true
        (Ordered_index.nearest idx ~center:5.0 ~radius:0.0 = Some (5.0, 50));
      Alcotest.(check bool) "radius excludes" true
        (Ordered_index.nearest idx ~center:1.0 ~radius:1.0 = None))

let test_index_nearest_duplicate_inserts () =
  (* Keys are unique: re-inserting overwrites, and nearest sees the latest
     value, never a stale duplicate. *)
  with_index_backends (fun idx ->
      Ordered_index.insert idx 2.0 1;
      Ordered_index.insert idx 2.0 2;
      Ordered_index.insert idx 2.0 3;
      Alcotest.(check int) "one entry" 1 (Ordered_index.size idx);
      Alcotest.(check bool) "latest value" true
        (Ordered_index.nearest idx ~center:2.4 ~radius:1.0 = Some (2.0, 3)))

let test_index_nearest_outside_key_range () =
  with_index_backends (fun idx ->
      List.iter (fun k -> Ordered_index.insert idx k (int_of_float k)) [ 10.0; 20.0; 30.0 ];
      Alcotest.(check bool) "below all keys snaps to the lowest" true
        (Ordered_index.nearest idx ~center:(-5.0) ~radius:100.0 = Some (10.0, 10));
      Alcotest.(check bool) "above all keys snaps to the highest" true
        (Ordered_index.nearest idx ~center:99.0 ~radius:100.0 = Some (30.0, 30));
      Alcotest.(check bool) "below all keys, out of radius" true
        (Ordered_index.nearest idx ~center:(-5.0) ~radius:1.0 = None);
      Alcotest.(check bool) "above all keys, out of radius" true
        (Ordered_index.nearest idx ~center:99.0 ~radius:1.0 = None))

let prop_nearest_backends_agree =
  (* Array and B+-tree must answer identically on random key sets and random
     probes — including after interleaved removals. *)
  QCheck.Test.make ~name:"nearest: array and B+-tree backends agree" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 40) (int_range 0 60))
        (list_of_size Gen.(int_range 0 10) (int_range 0 60))
        (list_of_size Gen.(int_range 1 20) (pair (int_range (-10) 70) (int_range 0 8))))
    (fun (keys, removals, probes) ->
      let arr = Ordered_index.create Ordered_index.Sorted_array in
      let bt = Ordered_index.create Ordered_index.Btree in
      List.iter
        (fun k ->
          Ordered_index.insert arr (float_of_int k) k;
          Ordered_index.insert bt (float_of_int k) k)
        keys;
      List.iter
        (fun k ->
          let a = Ordered_index.remove arr (float_of_int k) in
          let b = Ordered_index.remove bt (float_of_int k) in
          if a <> b then QCheck.Test.fail_reportf "remove %d disagreed" k)
        removals;
      Ordered_index.size arr = Ordered_index.size bt
      && List.for_all
           (fun (center, radius) ->
             Ordered_index.nearest arr ~center:(float_of_int center)
               ~radius:(float_of_int radius)
             = Ordered_index.nearest bt ~center:(float_of_int center)
                 ~radius:(float_of_int radius))
           probes)

(* ------------------------------------------ planner kernel integration *)

let test_planner_kernel_scratch_reuse () =
  (* Steady state: one grid allocation for the first search, pure reuse for
     every subsequent subplan — the zero-grid-allocation criterion. *)
  let planner =
    Resource_planner.create ~strategy:Resource_planner.Brute_force ~cache:false
      Conditions.default
  in
  Alcotest.(check bool) "kernels on by default" true (Resource_planner.kernel_enabled planner);
  List.iter
    (fun small_gb ->
      let kernel = kernel_of Join_impl.Smj ~small_gb in
      let kerneled =
        Resource_planner.plan ~kernel planner ~key:"SMJ/join" ~data_gb:small_gb
          ~cost:(op_cost Join_impl.Smj ~small_gb)
      in
      let scalar =
        Brute_force.search Conditions.default (op_cost Join_impl.Smj ~small_gb)
      in
      Alcotest.(check bool) "matches the scalar search" true (kerneled = scalar))
    [ 0.5; 1.5; 2.5; 3.5 ];
  let s = Resource_planner.scratch planner in
  Alcotest.(check int) "one grid allocation" 1 (Kernel.allocs s);
  Alcotest.(check int) "three reuses" 3 (Kernel.reuses s)

let test_planner_kernel_disabled_ignores_kernel () =
  let planner =
    Resource_planner.create ~strategy:Resource_planner.Brute_force ~cache:false
      ~kernel:false Conditions.default
  in
  Alcotest.(check bool) "reports disabled" true
    (not (Resource_planner.kernel_enabled planner));
  let kernel = kernel_of Join_impl.Smj ~small_gb:2.0 in
  let result =
    Resource_planner.plan ~kernel planner ~key:"SMJ/join" ~data_gb:2.0
      ~cost:(op_cost Join_impl.Smj ~small_gb:2.0)
  in
  Alcotest.(check bool) "scalar result" true
    (result = Brute_force.search Conditions.default (op_cost Join_impl.Smj ~small_gb:2.0));
  Alcotest.(check int) "scratch untouched" 0 (Kernel.allocs (Resource_planner.scratch planner))

let test_planner_kernel_pruned_no_bound_needed () =
  (* With a kernel in hand the pruned planner needs no caller bound: kernels
     only compile where bounds exist, and carry their own. *)
  let counters = Counters.create () in
  let planner =
    Resource_planner.create ~strategy:Resource_planner.Brute_force ~pruned:true ~cache:false
      ~counters Conditions.default
  in
  let small_gb = 2.0 in
  let kernel = kernel_of Join_impl.Bhj ~small_gb in
  let kerneled =
    Resource_planner.plan ~kernel planner ~key:"BHJ/join" ~data_gb:small_gb
      ~cost:(op_cost Join_impl.Bhj ~small_gb)
  in
  let sc = Counters.create () in
  let scalar =
    Brute_force.search_pruned ~counters:sc Conditions.default
      ~bound:(op_bound Join_impl.Bhj ~small_gb) (op_cost Join_impl.Bhj ~small_gb)
  in
  Alcotest.(check bool) "same result as scalar pruned" true (kerneled = scalar);
  Alcotest.(check int) "same pruned evaluation count" (Counters.cost_evaluations sc)
    (Counters.cost_evaluations counters)

let test_planner_kernel_cache_hit_recosting () =
  (* On a cache hit the cached configuration is re-costed through the kernel:
     same float as the scalar closure, one recorded evaluation. *)
  let counters = Counters.create () in
  let planner =
    Resource_planner.create ~strategy:Resource_planner.Hill_climb ~cache:true ~counters
      Conditions.default
  in
  let small_gb = 2.0 in
  let kernel = kernel_of Join_impl.Smj ~small_gb in
  let cost = op_cost Join_impl.Smj ~small_gb in
  let first =
    Resource_planner.plan ~kernel planner ~key:"SMJ/join" ~data_gb:small_gb ~cost
  in
  let hit = Resource_planner.plan ~kernel planner ~key:"SMJ/join" ~data_gb:small_gb ~cost in
  Alcotest.(check bool) "hit returns the cached plan at the same cost" true (first = hit);
  Alcotest.(check int) "one hit" 1 (Counters.cache_hits counters);
  Alcotest.(check bool) "hit cost equals the scalar model" true
    (snd hit = cost (fst hit))

let test_planner_cache_capacity_plumbed () =
  let counters = Counters.create () in
  let planner =
    Resource_planner.create ~strategy:Resource_planner.Hill_climb ~cache:true
      ~cache_capacity:2 ~counters Conditions.default
  in
  List.iter
    (fun gb ->
      ignore
        (Resource_planner.plan planner ~key:"SMJ/join" ~data_gb:gb
           ~cost:(op_cost Join_impl.Smj ~small_gb:gb)))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "cache stays bounded" 2 (Resource_planner.cache_size planner);
  Alcotest.(check int) "evictions recorded" 2 (Counters.cache_evictions counters)

(* ---------------------------------------------------- Shared plan cache *)

module Shared_plan_cache = Raqo_resource.Shared_plan_cache

let test_shared_cache_basics () =
  let c = Shared_plan_cache.create ~shards:4 ~capacity:10 () in
  Alcotest.(check int) "shards" 4 (Shared_plan_cache.shard_count c);
  (* ceil (10 / 4) = 3 per shard *)
  Alcotest.(check (option int)) "per-shard bound" (Some 3)
    (Shared_plan_cache.per_shard_capacity c);
  Shared_plan_cache.insert c ~key:"SMJ/a" ~data_gb:1.0 (res 4 2.0);
  Shared_plan_cache.insert c ~key:"SMJ/a" ~data_gb:2.0 (res 8 2.0);
  Alcotest.(check (option (module Resources))) "exact hit" (Some (res 4 2.0))
    (Shared_plan_cache.find c ~key:"SMJ/a" ~data_gb:1.0 Plan_cache.Exact);
  Alcotest.(check (option (module Resources))) "range lookups see the whole key"
    (Some (res 8 2.0))
    (Shared_plan_cache.find c ~key:"SMJ/a" ~data_gb:2.2
       (Plan_cache.Nearest_neighbor 1.0));
  Alcotest.(check (option (module Resources))) "miss" None
    (Shared_plan_cache.find c ~key:"SMJ/b" ~data_gb:1.0 Plan_cache.Exact);
  Alcotest.(check int) "hits" 2 (Shared_plan_cache.hits c);
  Alcotest.(check int) "misses" 1 (Shared_plan_cache.misses c);
  Alcotest.(check int) "inserts" 2 (Shared_plan_cache.inserts c);
  Alcotest.(check int) "size" 2 (Shared_plan_cache.size c);
  Shared_plan_cache.clear c;
  Alcotest.(check int) "clear empties" 0 (Shared_plan_cache.size c);
  Alcotest.(check int) "counters survive clear" 2 (Shared_plan_cache.inserts c)

(* One domain's deterministic workload over its own key space: find-then-
   insert-on-miss, re-probing a sliding window so hits and misses both
   occur. Returns (finds, hits) so the caller can check counter sums. *)
let shared_cache_workload cache d ops =
  let finds = ref 0 and hits = ref 0 in
  for i = 0 to ops - 1 do
    let key = Printf.sprintf "d%d/k%d" d (i mod 7) in
    let data_gb = float_of_int (i mod 23) in
    incr finds;
    (match Shared_plan_cache.find cache ~key ~data_gb Plan_cache.Exact with
    | Some _ -> incr hits
    | None -> Shared_plan_cache.insert cache ~key ~data_gb (res (1 + (i mod 8)) 2.0))
  done;
  (!finds, !hits)

let run_shared_cache_domains cache ~domains ~ops =
  let spawned =
    List.init (domains - 1) (fun d ->
        Domain.spawn (fun () -> shared_cache_workload cache (d + 1) ops))
  in
  let first = shared_cache_workload cache 0 ops in
  first :: List.map Domain.join spawned

let test_shared_cache_concurrent_no_lost_entries () =
  (* Unbounded cache, disjoint key spaces: every domain's entries must all
     survive, and hit/miss totals must equal a sequential replay's (the
     domains cannot interact without evictions). *)
  let domains = 4 and ops = 400 in
  let cache = Shared_plan_cache.create ~shards:4 () in
  let results = run_shared_cache_domains cache ~domains ~ops in
  let total_finds = List.fold_left (fun a (f, _) -> a + f) 0 results in
  let total_hits = List.fold_left (fun a (_, h) -> a + h) 0 results in
  Alcotest.(check int) "hits + misses = finds" total_finds
    (Shared_plan_cache.hits cache + Shared_plan_cache.misses cache);
  Alcotest.(check int) "hits counter agrees" total_hits (Shared_plan_cache.hits cache);
  Alcotest.(check int) "no entry lost" (Shared_plan_cache.inserts cache)
    (Shared_plan_cache.size cache);
  Alcotest.(check int) "no evictions unbounded" 0 (Shared_plan_cache.evictions cache);
  (* Sequential replay on a fresh cache: identical totals. *)
  let seq = Shared_plan_cache.create ~shards:4 () in
  let seq_results = List.init domains (fun d -> shared_cache_workload seq d ops) in
  Alcotest.(check bool) "per-domain (finds,hits) match sequential" true
    (List.sort compare results = List.sort compare seq_results);
  Alcotest.(check int) "hits match sequential" (Shared_plan_cache.hits seq)
    (Shared_plan_cache.hits cache);
  Alcotest.(check int) "misses match sequential" (Shared_plan_cache.misses seq)
    (Shared_plan_cache.misses cache);
  Alcotest.(check int) "inserts match sequential" (Shared_plan_cache.inserts seq)
    (Shared_plan_cache.inserts cache);
  Alcotest.(check (list string)) "same keys as sequential" (Shared_plan_cache.keys seq)
    (Shared_plan_cache.keys cache)

let test_shared_cache_concurrent_lru_bound () =
  (* Bounded cache under cross-domain contention: the per-shard LRU bound
     must hold at every moment (checked after the storm and from a
     concurrent observer), and the entry count must reconcile with the
     insert and eviction counters exactly. *)
  let domains = 4 and ops = 600 in
  let cache = Shared_plan_cache.create ~shards:4 ~capacity:16 () in
  let bound = Option.get (Shared_plan_cache.per_shard_capacity cache) in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let observer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Array.iter
            (fun s -> if s > bound then Atomic.incr violations)
            (Shared_plan_cache.shard_sizes cache)
        done)
  in
  ignore (run_shared_cache_domains cache ~domains ~ops);
  Atomic.set stop true;
  Domain.join observer;
  Alcotest.(check int) "bound never observed exceeded" 0 (Atomic.get violations);
  Array.iter
    (fun s -> Alcotest.(check bool) "final shard size within bound" true (s <= bound))
    (Shared_plan_cache.shard_sizes cache);
  (* Disjoint (key, data_gb) spaces mean no overwrites, so every insert
     grew a shard by one and every eviction shrank one: exact accounting. *)
  Alcotest.(check int) "size = inserts - evictions"
    (Shared_plan_cache.inserts cache - Shared_plan_cache.evictions cache)
    (Shared_plan_cache.size cache);
  Alcotest.(check bool) "evictions actually happened" true
    (Shared_plan_cache.evictions cache > 0);
  Alcotest.(check int) "find totals still exact" (domains * ops)
    (Shared_plan_cache.hits cache + Shared_plan_cache.misses cache)

let test_shared_cache_registry_mirrors () =
  (* With observability on, the cache's registry carries equal totals under
     the raqo_shared_plan_cache_* names. *)
  let registry = Raqo_obs.Metrics.create_registry () in
  let cache = Shared_plan_cache.create ~shards:2 ~capacity:4 ~registry () in
  Raqo_obs.Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Raqo_obs.Obs.set_enabled false)
    (fun () ->
      ignore (shared_cache_workload cache 0 100);
      let counter name =
        Raqo_obs.Metrics.Counter.value (Raqo_obs.Metrics.counter_in registry name)
      in
      Alcotest.(check int) "hits mirrored" (Shared_plan_cache.hits cache)
        (counter "raqo_shared_plan_cache_hits_total");
      Alcotest.(check int) "misses mirrored" (Shared_plan_cache.misses cache)
        (counter "raqo_shared_plan_cache_misses_total");
      Alcotest.(check int) "inserts mirrored" (Shared_plan_cache.inserts cache)
        (counter "raqo_shared_plan_cache_inserts_total");
      Alcotest.(check int) "evictions mirrored" (Shared_plan_cache.evictions cache)
        (counter "raqo_shared_plan_cache_evictions_total"))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_resource"
    [
      ( "brute_force",
        [
          Alcotest.test_case "finds the minimum" `Quick test_brute_force_finds_minimum;
          Alcotest.test_case "counts every configuration" `Quick
            test_brute_force_counts_every_config;
          Alcotest.test_case "stable tie-break" `Quick test_brute_force_tie_break_stable;
        ] );
      ( "brute_force_pruned",
        [
          Alcotest.test_case "equals exhaustive on the default grid" `Quick
            test_pruned_matches_exhaustive;
          Alcotest.test_case ">=5x fewer cost evaluations" `Quick
            test_pruned_five_x_fewer_evals;
          Alcotest.test_case "BHJ partial infeasibility" `Quick
            test_pruned_bhj_partial_infeasibility;
          Alcotest.test_case "all-infeasible degenerate surface" `Quick
            test_pruned_all_infeasible_degenerate;
        ]
        @ qsuite [ prop_pruned_matches_exhaustive_random_grids ] );
      ( "hill_climb",
        [
          Alcotest.test_case "exact on convex surfaces" `Quick test_hill_climb_convex_exact;
          Alcotest.test_case "cheaper than brute force" `Quick
            test_hill_climb_explores_fewer_than_brute_force;
          Alcotest.test_case "starts from the minimum config" `Quick
            test_hill_climb_starts_at_minimum_config;
          Alcotest.test_case "custom start point" `Quick test_hill_climb_custom_start;
          Alcotest.test_case "start is clamped" `Quick test_hill_climb_start_clamped;
          Alcotest.test_case "saturates at bounds" `Quick test_hill_climb_respects_bounds;
          Alcotest.test_case "terminates on infinite plateau" `Quick
            test_hill_climb_local_optimum_on_infinite_plateau;
        ]
        @ qsuite
            [
              prop_hill_climb_result_within_conditions;
              prop_hill_climb_is_local_optimum;
              prop_hill_climb_never_beats_brute_force;
            ] );
      ( "plan_cache",
        [
          Alcotest.test_case "exact hit/miss" `Quick test_cache_exact_hit_miss;
          Alcotest.test_case "overwrite on same key" `Quick test_cache_overwrite;
          Alcotest.test_case "nearest neighbor" `Quick test_cache_nearest_neighbor;
          Alcotest.test_case "weighted average" `Quick test_cache_weighted_average;
          Alcotest.test_case "weighted average prefers exact" `Quick
            test_cache_weighted_average_prefers_exact;
          Alcotest.test_case "weighted average epsilon exact guard" `Quick
            test_cache_weighted_average_epsilon_exact_guard;
          Alcotest.test_case "weighted average denormal distance" `Quick
            test_cache_weighted_average_denormal_distance;
          Alcotest.test_case "auto-resizing keeps entries" `Quick
            test_cache_resizes_past_initial_capacity;
          Alcotest.test_case "random insert order stays sorted" `Quick
            test_cache_insert_random_order_stays_sorted;
          Alcotest.test_case "clear" `Quick test_cache_clear;
          Alcotest.test_case "hit/miss counters" `Quick test_cache_counters;
        ]
        @ qsuite [ prop_cache_nn_within_threshold; prop_cache_wa_within_neighbor_hull ] );
      ( "ordered_index",
        [
          Alcotest.test_case "insert/find on both backends" `Quick test_index_insert_find;
          Alcotest.test_case "overwrite on both backends" `Quick test_index_overwrite;
          Alcotest.test_case "range queries" `Quick test_index_within;
          Alcotest.test_case "ordered iteration after shuffled inserts" `Quick
            test_index_ordered_iteration;
          Alcotest.test_case "B+-tree at 20k entries" `Quick test_btree_large_scale;
          Alcotest.test_case "plan cache on the B+-tree backend" `Quick test_cache_btree_backend;
          Alcotest.test_case "nearest: empty/single/radius" `Quick test_index_nearest_basic;
          Alcotest.test_case "nearest: ties go to the lower key" `Quick
            test_index_nearest_tie_goes_to_lower_key;
          Alcotest.test_case "nearest: B+-tree across leaf boundaries" `Quick
            test_index_nearest_btree_across_leaves;
        ]
        @ qsuite [ prop_backends_agree; prop_nearest_matches_linear_scan ] );
      ( "resource_planner",
        [
          Alcotest.test_case "cache hit short-circuits search" `Quick test_planner_cache_flow;
          Alcotest.test_case "no cache recomputes" `Quick test_planner_no_cache_recomputes;
          Alcotest.test_case "NN lookup reuses neighbors" `Quick
            test_planner_nn_lookup_reuses_neighbor;
          Alcotest.test_case "brute-force strategy" `Quick test_planner_brute_force_strategy;
          Alcotest.test_case "pruned brute force matches exhaustive" `Quick
            test_planner_pruned_brute_force;
          Alcotest.test_case "pruned without a bound stays exhaustive" `Quick
            test_planner_pruned_without_bound_stays_exhaustive;
          Alcotest.test_case "condition change clamps cached plans" `Quick
            test_planner_with_conditions_shares_cache;
          Alcotest.test_case "reset" `Quick test_planner_reset;
          Alcotest.test_case "counter accumulation" `Quick test_counters_add;
        ] );
      ( "kernel_search",
        [
          Alcotest.test_case "sweep search equals scalar search" `Quick
            test_search_kernel_matches_scalar;
          Alcotest.test_case "tie-break on a floored plateau" `Quick
            test_search_kernel_tie_break_on_plateau;
          Alcotest.test_case "pruned kernel equals scalar pruned" `Quick
            test_search_pruned_kernel_matches_scalar;
          Alcotest.test_case "kernel hill climb equals scalar climb" `Quick
            test_hill_climb_kernel_matches_scalar;
        ]
        @ qsuite [ prop_kernel_searches_match_scalar_random_grids ] );
      ( "plan_cache_lru",
        [
          Alcotest.test_case "capacity must be positive" `Quick test_cache_capacity_validates;
          Alcotest.test_case "unbounded by default" `Quick test_cache_unbounded_by_default;
          Alcotest.test_case "evicts least-recently-used" `Quick
            test_cache_capacity_evicts_lru;
          Alcotest.test_case "exact lookup refreshes recency" `Quick
            test_cache_lookup_refreshes_recency;
          Alcotest.test_case "nearest lookup refreshes recency" `Quick
            test_cache_nearest_lookup_refreshes_recency;
          Alcotest.test_case "bound spans cache keys" `Quick test_cache_capacity_spans_keys;
          Alcotest.test_case "overwrite does not evict" `Quick
            test_cache_overwrite_does_not_evict;
          Alcotest.test_case "eviction counters" `Quick test_cache_eviction_counters;
        ]
        @ qsuite [ prop_cache_capacity_never_exceeded ] );
      ( "shared_plan_cache",
        [
          Alcotest.test_case "striping & counters (sequential)" `Quick
            test_shared_cache_basics;
          Alcotest.test_case "4 domains, no lost entries, sequential totals" `Quick
            test_shared_cache_concurrent_no_lost_entries;
          Alcotest.test_case "4 domains, per-shard LRU bound holds" `Quick
            test_shared_cache_concurrent_lru_bound;
          Alcotest.test_case "registry mirrors" `Quick test_shared_cache_registry_mirrors;
        ] );
      ( "ordered_index_remove",
        [
          Alcotest.test_case "remove on both backends" `Quick test_index_remove_basic;
          Alcotest.test_case "B+-tree removal across leaves" `Quick
            test_index_remove_btree_across_leaves;
        ] );
      ( "ordered_index_nearest_edges",
        [
          Alcotest.test_case "single element" `Quick test_index_nearest_single_element;
          Alcotest.test_case "duplicate inserts overwrite" `Quick
            test_index_nearest_duplicate_inserts;
          Alcotest.test_case "queries outside the key range" `Quick
            test_index_nearest_outside_key_range;
        ]
        @ qsuite [ prop_nearest_backends_agree ] );
      ( "resource_planner_kernel",
        [
          Alcotest.test_case "scratch reuse across plans" `Quick
            test_planner_kernel_scratch_reuse;
          Alcotest.test_case "kernel:false ignores supplied kernels" `Quick
            test_planner_kernel_disabled_ignores_kernel;
          Alcotest.test_case "pruned kernel search needs no bound" `Quick
            test_planner_kernel_pruned_no_bound_needed;
          Alcotest.test_case "cache hits re-cost through the kernel" `Quick
            test_planner_kernel_cache_hit_recosting;
          Alcotest.test_case "cache capacity plumbed through" `Quick
            test_planner_cache_capacity_plumbed;
        ] );
    ]
