(* Tests for Raqo_rewrite: the logical rewrite memo — rule firing, the exact
   gates, the zero-allocation no-op fast path, and the threading through
   Cost_based / Sql_frontend. *)

module Relation = Raqo_catalog.Relation
module Join_graph = Raqo_catalog.Join_graph
module Schema = Raqo_catalog.Schema
module Tpch = Raqo_catalog.Tpch
module Rewrite = Raqo_rewrite.Rewrite
module Cost_based = Raqo.Cost_based

let edge left right selectivity = { Join_graph.left; right; selectivity }

let rel name rows = Relation.make ~name ~rows ~row_bytes:100.0

(* A star with an exactly-absorbable FK dimension: power-of-two rows make
   [rows *. (1.0 /. rows)] exactly 1.0, so the exact [<= 1.0] gate fires
   without any rounding slack. *)
let fk_schema () =
  Schema.make
    [ rel "fact" 1_000_000.0; rel "dim" 65536.0; rel "other" 1000.0 ]
    (Join_graph.make
       [ edge "fact" "dim" (1.0 /. 65536.0); edge "fact" "other" 1e-3 ])

let bits = Int64.bits_of_float

let check_bits msg expected actual =
  if not (Int64.equal (bits expected) (bits actual)) then
    Alcotest.failf "%s: expected %h, got %h" msg expected actual

let rows schema name = (Schema.find schema name).Relation.rows
let width schema name = (Schema.find schema name).Relation.row_bytes

(* ------------------------------------------------------------ no-op path *)

let test_noop_physically_unchanged () =
  let schema = Tpch.schema () in
  let rels = [ "customer"; "orders"; "lineitem" ] in
  let t = Rewrite.create schema in
  Alcotest.(check bool) "no rule fired" false (Rewrite.apply t ~hints:Rewrite.no_hints rels);
  Alcotest.(check bool) "schema is the argument" true (Rewrite.schema_out t == schema);
  Alcotest.(check bool) "relations are the argument" true (Rewrite.relations_out t == rels);
  Alcotest.(check bool) "report unchanged" false (Rewrite.last t).Rewrite.changed;
  (* All-referenced hints are equally a guaranteed no-op. *)
  let all = { Rewrite.filters = []; referenced = Some rels } in
  Alcotest.(check bool) "all-referenced no-op" false (Rewrite.apply t ~hints:all rels);
  Alcotest.(check bool) "still the argument" true (Rewrite.relations_out t == rels)

let test_degenerate_inputs_noop () =
  let schema = fk_schema () in
  let t = Rewrite.create schema in
  let hints = { Rewrite.filters = [ ("fact", 0.5) ]; referenced = Some [] } in
  (* Self-join (duplicate relation): the memo admits each relation once, so
     the query is handed back untouched for the planner to reject or handle. *)
  let dup = [ "fact"; "fact"; "dim" ] in
  Alcotest.(check bool) "duplicate list" false (Rewrite.apply t ~hints dup);
  Alcotest.(check bool) "duplicate untouched" true (Rewrite.relations_out t == dup);
  (* Unknown relation: same contract. *)
  let unknown = [ "fact"; "nope" ] in
  Alcotest.(check bool) "unknown relation" false (Rewrite.apply t ~hints unknown);
  Alcotest.(check bool) "unknown untouched" true (Rewrite.relations_out t == unknown);
  (* Empty query. *)
  Alcotest.(check bool) "empty list" false (Rewrite.apply t ~hints [])

let test_noop_fast_path_allocation_free () =
  let schema = Tpch.schema () in
  let rels = Schema.relation_names schema in
  let t = Rewrite.create schema in
  let all = { Rewrite.filters = []; referenced = Some rels } in
  (* Warm both no-op shapes once, then probe the minor heap across many
     applies: anything allocated per call would show up thousands of words
     over 1000 iterations; the slack only covers the Gc probe's own boxes. *)
  ignore (Rewrite.apply t ~hints:Rewrite.no_hints rels);
  ignore (Rewrite.apply t ~hints:all rels);
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Rewrite.apply t ~hints:Rewrite.no_hints rels);
    ignore (Rewrite.apply t ~hints:all rels)
  done;
  let dw = Gc.minor_words () -. w0 in
  if dw >= 64.0 then Alcotest.failf "no-op apply allocated (%.0f minor words / 2000 calls)" dw

(* -------------------------------------------------------------- pushdown *)

let test_pushdown_replays_resolver_formula () =
  let schema = Tpch.schema () in
  let rels = [ "customer"; "orders"; "lineitem" ] in
  let sel = 0.3087 in
  let t = Rewrite.create schema in
  let hints = { Rewrite.filters = [ ("orders", sel) ]; referenced = None } in
  Alcotest.(check bool) "pushdown fired" true (Rewrite.apply t ~hints rels);
  let out = Rewrite.schema_out t in
  let r = rows schema "orders" in
  check_bits "resolver scan-scaling formula, bitwise"
    (r *. Float.max (1.0 /. r) sel)
    (rows out "orders");
  check_bits "other scans untouched" (rows schema "lineitem") (rows out "lineitem");
  check_bits "widths untouched" (width schema "orders") (width out "orders");
  let report = Rewrite.last t in
  Alcotest.(check int) "one pushdown" 1 report.Rewrite.pushdown;
  Alcotest.(check int) "no removal" 0 report.Rewrite.removed;
  Alcotest.(check (list (pair string int))) "fired list" [ ("pushdown", 1) ]
    (Rewrite.fired report);
  (* Selectivities >= 1 and names outside the query are ignored. *)
  let silly =
    { Rewrite.filters = [ ("orders", 1.0); ("nation", 0.5) ]; referenced = None }
  in
  Alcotest.(check bool) "ignored filters are a no-op" false (Rewrite.apply t ~hints:silly rels)

(* ------------------------------------------------------ FK-leaf absorption *)

let test_fk_leaf_absorbed () =
  let schema = fk_schema () in
  let rels = [ "fact"; "dim"; "other" ] in
  let t = Rewrite.create schema in
  let hints = { Rewrite.filters = []; referenced = Some [ "fact"; "other" ] } in
  Alcotest.(check bool) "fired" true (Rewrite.apply t ~hints rels);
  Alcotest.(check (list string)) "dim absorbed, order preserved" [ "fact"; "other" ]
    (Rewrite.relations_out t);
  let out = Rewrite.schema_out t in
  (* rows(dim) * sel = 65536 * 2^-16 = 1.0 exactly: fact's cardinality is
     scaled by exactly 1.0, i.e. unchanged bitwise. *)
  check_bits "fact rows scaled by exactly 1.0" (rows schema "fact") (rows out "fact");
  let report = Rewrite.last t in
  Alcotest.(check int) "one fk absorption" 1 report.Rewrite.fk;
  Alcotest.(check int) "one removal" 1 report.Rewrite.removed;
  Alcotest.(check (list (pair string string))) "group merge recorded"
    [ ("dim", "fact") ] report.Rewrite.absorbed

let test_fk_gate_is_exact () =
  (* 65537 rows against the same 2^-16 selectivity: the product is > 1.0, so
     the exact gate must hold the relation in the query. *)
  let schema =
    Schema.make
      [ rel "fact" 1_000_000.0; rel "dim" 65537.0; rel "other" 1000.0 ]
      (Join_graph.make
         [ edge "fact" "dim" (1.0 /. 65536.0); edge "fact" "other" 1e-3 ])
  in
  let t = Rewrite.create schema in
  let hints = { Rewrite.filters = []; referenced = Some [ "fact"; "other" ] } in
  ignore (Rewrite.apply t ~hints [ "fact"; "dim"; "other" ]);
  Alcotest.(check (list string)) "dim survives (narrowed, not removed)"
    [ "fact"; "dim"; "other" ] (Rewrite.relations_out t);
  Alcotest.(check int) "no removal" 0 (Rewrite.last t).Rewrite.removed;
  check_bits "but narrowed to the key stub" Rewrite.projected_row_bytes
    (width (Rewrite.schema_out t) "dim")

let test_predicates_on_both_sides_of_removable_edge () =
  let schema = fk_schema () in
  let rels = [ "fact"; "dim"; "other" ] in
  let t = Rewrite.create schema in
  let hints =
    {
      Rewrite.filters = [ ("fact", 0.25); ("dim", 0.5) ];
      referenced = Some [ "fact"; "other" ];
    }
  in
  Alcotest.(check bool) "fired" true (Rewrite.apply t ~hints rels);
  Alcotest.(check (list string)) "dim still absorbable after its own filter"
    [ "fact"; "other" ] (Rewrite.relations_out t);
  let out = Rewrite.schema_out t in
  (* Pushdown first (both sides), then absorption folds the filtered dim's
     rows times the edge selectivity into fact: 32768 * 2^-16 = 0.5. *)
  let fact0 = rows schema "fact" *. 0.25 in
  let dim0 = rows schema "dim" *. 0.5 in
  check_bits "fact = pushdown then fold, bitwise"
    (fact0 *. (dim0 *. (1.0 /. 65536.0)))
    (rows out "fact");
  let report = Rewrite.last t in
  Alcotest.(check int) "two pushdowns" 2 report.Rewrite.pushdown;
  Alcotest.(check int) "one fk absorption" 1 report.Rewrite.fk

let test_fk_cascade () =
  (* d2 is a leaf off d1; absorbing d2 turns d1 into a leaf off fact, which
     the interleaved saturation then absorbs too. A fourth relation keeps
     the live count above the >2 gate for both removals. *)
  let schema =
    Schema.make
      [ rel "fact" 1e6; rel "x" 1e5; rel "d1" 65536.0; rel "d2" 256.0 ]
      (Join_graph.make
         [
           edge "fact" "x" 1e-4;
           edge "fact" "d1" (1.0 /. 65536.0);
           edge "d1" "d2" (1.0 /. 256.0);
         ])
  in
  let t = Rewrite.create schema in
  let hints = { Rewrite.filters = []; referenced = Some [ "fact"; "x" ] } in
  Alcotest.(check bool) "fired" true (Rewrite.apply t ~hints [ "fact"; "x"; "d1"; "d2" ]);
  Alcotest.(check (list string)) "both dimensions gone" [ "fact"; "x" ]
    (Rewrite.relations_out t);
  Alcotest.(check int) "two fk absorptions" 2 (Rewrite.last t).Rewrite.fk

(* ----------------------------------------------------- constant absorption *)

let test_constant_connectivity_gate () =
  (* Chain a — c — b with constant c: removing the cut vertex would
     disconnect the query, so the rule must not fire; c is narrowed instead. *)
  let chain =
    Schema.make
      [ rel "a" 1e5; rel "c" 1.0; rel "b" 1e4 ]
      (Join_graph.make [ edge "a" "c" 0.1; edge "c" "b" 0.1 ])
  in
  let t = Rewrite.create chain in
  let hints = { Rewrite.filters = []; referenced = Some [ "a"; "b" ] } in
  ignore (Rewrite.apply t ~hints [ "a"; "c"; "b" ]);
  Alcotest.(check (list string)) "cut vertex survives" [ "a"; "c"; "b" ]
    (Rewrite.relations_out t);
  Alcotest.(check int) "no constant absorption" 0 (Rewrite.last t).Rewrite.constant;
  (* Close the triangle and the same constant is removable: survivors stay
     connected through the a — b edge, and both edge selectivities fold into
     the lowest-index live neighbour. *)
  let triangle =
    Schema.make
      [ rel "a" 1e5; rel "c" 1.0; rel "b" 1e4 ]
      (Join_graph.make [ edge "a" "c" 0.1; edge "c" "b" 0.1; edge "a" "b" 0.01 ])
  in
  let t = Rewrite.create triangle in
  Alcotest.(check bool) "fires on the triangle" true (Rewrite.apply t ~hints [ "a"; "c"; "b" ]);
  Alcotest.(check (list string)) "constant removed" [ "a"; "b" ] (Rewrite.relations_out t);
  Alcotest.(check int) "one constant absorption" 1 (Rewrite.last t).Rewrite.constant;
  check_bits "edge products folded into a, bitwise"
    (1e5 *. (1.0 *. 0.1 *. 0.1))
    (rows (Rewrite.schema_out t) "a")

(* ---------------------------------------------------- projection narrowing *)

let test_projection_narrowing_spares_referenced () =
  (* "other" is unreferenced but not absorbable (1000 * 0.01 = 10 rows out
     of the join), so it is narrowed to the key stub; "dim" would be
     absorbable but is referenced, which pins both its membership and its
     width. *)
  let schema =
    Schema.make
      [ rel "fact" 1_000_000.0; rel "dim" 65536.0; rel "other" 1000.0 ]
      (Join_graph.make
         [ edge "fact" "dim" (1.0 /. 65536.0); edge "fact" "other" 0.01 ])
  in
  let t = Rewrite.create schema in
  let hints = { Rewrite.filters = []; referenced = Some [ "fact"; "dim" ] } in
  ignore (Rewrite.apply t ~hints [ "fact"; "dim"; "other" ]);
  let out = Rewrite.schema_out t in
  Alcotest.(check (list string)) "nothing removed" [ "fact"; "dim"; "other" ]
    (Rewrite.relations_out t);
  check_bits "unreferenced survivor narrowed" Rewrite.projected_row_bytes
    (width out "other");
  check_bits "referenced relations keep their width" (width schema "dim") (width out "dim");
  check_bits "rows never change under narrowing" (rows schema "other") (rows out "other");
  Alcotest.(check int) "one narrowing" 1 (Rewrite.last t).Rewrite.project

(* ------------------------------------------------------ optimizer threading *)

let conditions = Raqo_cluster.Conditions.make ~max_containers:8 ~max_gb:6.0 ()
let model = Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper

let test_cost_based_default_identity () =
  let schema = Tpch.schema () in
  let rels = [ "customer"; "orders"; "lineitem" ] in
  let run rewrite =
    let t = Cost_based.create ~kernel:false ~rewrite ~model ~conditions schema in
    Cost_based.optimize t rels
  in
  Alcotest.(check bool) "rewrite-on (default hints) = rewrite-off, bitwise" true
    (run true = run false)

let test_cost_based_hinted_never_worse () =
  let schema = fk_schema () in
  let rels = [ "fact"; "dim"; "other" ] in
  let hints = { Rewrite.filters = []; referenced = Some [ "fact"; "other" ] } in
  let run rewrite =
    let t =
      Cost_based.create ~kernel:false
        ~resource_strategy:Raqo_resource.Resource_planner.Brute_force ~rewrite
        ~rewrite_hints:hints ~model ~conditions schema
    in
    Cost_based.optimize t rels
  in
  match (run true, run false) with
  | Some (_, on), Some (_, off) ->
      if not (on <= off) then Alcotest.failf "rewritten cost %h > unrewritten %h" on off
  | _ -> Alcotest.fail "expected plans from both optimizers"

let test_sql_frontend_bitwise_identity () =
  (* Filter-only select-star SQL: pushdown replays the resolver's scan
     scaling bitwise, so the rewritten plan and cost equal the historical
     path exactly. *)
  let sql =
    "select * from orders, lineitem where o_orderkey = l_orderkey and o_totalprice < \
     172000"
  in
  let plan rewrite =
    match
      Raqo.Sql_frontend.plan ~kernel:false ~rewrite ~model ~conditions
        ~schema:(Tpch.schema ()) ~columns:(Tpch.columns ()) sql
    with
    | Ok planned -> planned
    | Error e -> Alcotest.failf "plan failed: %s" e
  in
  let on = plan true and off = plan false in
  Alcotest.(check bool) "same joint plan" true
    (on.Raqo.Sql_frontend.plan = off.Raqo.Sql_frontend.plan);
  (match on.Raqo.Sql_frontend.rewrite with
  | Some r ->
      Alcotest.(check bool) "pushdown reported" true (r.Rewrite.pushdown >= 1)
  | None -> Alcotest.fail "rewrite-on must carry a report");
  Alcotest.(check bool) "rewrite-off carries no report" true
    (off.Raqo.Sql_frontend.rewrite = None)

let test_sql_frontend_narrows_unprojected () =
  (* A projected column list leaves lineitem join-only: narrowing fires and
     the joint cost cannot exceed the unrewritten plan's. *)
  let sql =
    "select o_orderkey from orders, lineitem where o_orderkey = l_orderkey and \
     o_totalprice < 172000"
  in
  let plan rewrite =
    match
      Raqo.Sql_frontend.plan ~kernel:false ~rewrite ~model ~conditions
        ~schema:(Tpch.schema ()) ~columns:(Tpch.columns ()) sql
    with
    | Ok planned -> planned
    | Error e -> Alcotest.failf "plan failed: %s" e
  in
  let on = plan true in
  match on.Raqo.Sql_frontend.rewrite with
  | Some r -> Alcotest.(check bool) "narrowing fired" true (r.Rewrite.project >= 1)
  | None -> Alcotest.fail "expected a rewrite report"

let () =
  Alcotest.run "raqo_rewrite"
    [
      ( "noop",
        [
          Alcotest.test_case "physically unchanged" `Quick test_noop_physically_unchanged;
          Alcotest.test_case "degenerate inputs" `Quick test_degenerate_inputs_noop;
          Alcotest.test_case "allocation-free fast path" `Quick
            test_noop_fast_path_allocation_free;
        ] );
      ( "rules",
        [
          Alcotest.test_case "pushdown replays the resolver" `Quick
            test_pushdown_replays_resolver_formula;
          Alcotest.test_case "fk leaf absorbed" `Quick test_fk_leaf_absorbed;
          Alcotest.test_case "fk gate is exact" `Quick test_fk_gate_is_exact;
          Alcotest.test_case "predicates on both sides" `Quick
            test_predicates_on_both_sides_of_removable_edge;
          Alcotest.test_case "fk cascade" `Quick test_fk_cascade;
          Alcotest.test_case "constant needs connectivity" `Quick
            test_constant_connectivity_gate;
          Alcotest.test_case "narrowing spares referenced" `Quick
            test_projection_narrowing_spares_referenced;
        ] );
      ( "threading",
        [
          Alcotest.test_case "cost-based default identity" `Quick
            test_cost_based_default_identity;
          Alcotest.test_case "cost-based hinted never worse" `Quick
            test_cost_based_hinted_never_worse;
          Alcotest.test_case "sql frontend bitwise identity" `Quick
            test_sql_frontend_bitwise_identity;
          Alcotest.test_case "sql frontend narrows unprojected" `Quick
            test_sql_frontend_narrows_unprojected;
        ] );
    ]
