(* Tests for Raqo_scheduler: capacity traces and the policy-driven executor
   (the paper's "interaction with the DAG scheduler" agenda item). *)

module Capacity = Raqo_scheduler.Capacity
module Executor = Raqo_scheduler.Executor
module Conditions = Raqo_cluster.Conditions
module Resources = Raqo_cluster.Resources
module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Tpch = Raqo_catalog.Tpch
module Schema = Raqo_catalog.Schema

let hive = Raqo_execsim.Engine.hive
let model = Raqo.Models.hive ()
let res nc gb = Resources.make ~containers:nc ~container_gb:gb
let roomy = Conditions.make ~max_containers:100 ~max_gb:10.0 ()
let tight = Conditions.make ~max_containers:8 ~max_gb:3.0 ()

let schema =
  (* 5.1 GB orders sample so BHJ plans exist and can OOM under the dip. *)
  let s = Tpch.schema () in
  Schema.with_relation s
    (Raqo_catalog.Relation.scale (Schema.find s "orders") (5.1 /. 16.48))

(* A plan whose single join wants a big-memory BHJ. *)
let bhj_plan = Join_tree.Join ((Join_impl.Bhj, res 10 9.0), Join_tree.Scan "orders", Join_tree.Scan "lineitem")
let smj_plan = Join_tree.Join ((Join_impl.Smj, res 40 3.0), Join_tree.Scan "orders", Join_tree.Scan "lineitem")

(* ------------------------------------------------------------- Capacity *)

let test_capacity_constant () =
  let c = Capacity.constant roomy in
  Alcotest.(check bool) "always roomy" true (Capacity.at c 0.0 == roomy && Capacity.at c 1e9 == roomy);
  Alcotest.(check bool) "no changes" true (Capacity.next_change c ~after:0.0 = None)

let test_capacity_steps () =
  let c = Capacity.steps ~initial:roomy [ (100.0, tight); (200.0, roomy) ] in
  Alcotest.(check bool) "before" true (Capacity.at c 99.9 == roomy);
  Alcotest.(check bool) "during" true (Capacity.at c 100.0 == tight);
  Alcotest.(check bool) "after" true (Capacity.at c 200.0 == roomy);
  Alcotest.(check (option (float 1e-9))) "next change" (Some 200.0)
    (Capacity.next_change c ~after:100.0)

let test_capacity_steps_rejects_unordered () =
  Alcotest.check_raises "unordered"
    (Invalid_argument "Capacity.steps: change times must be increasing and positive")
    (fun () -> ignore (Capacity.steps ~initial:roomy [ (10.0, tight); (5.0, roomy) ]))

let test_capacity_dip () =
  let c = Capacity.dip ~normal:roomy ~reduced:tight ~from_t:50.0 ~until_t:150.0 in
  Alcotest.(check bool) "normal before" true (Capacity.at c 0.0 == roomy);
  Alcotest.(check bool) "reduced inside" true (Capacity.at c 100.0 == tight);
  Alcotest.(check bool) "normal after" true (Capacity.at c 150.0 == roomy)

let test_capacity_fits () =
  Alcotest.(check bool) "fits" true (Capacity.fits roomy (res 100 10.0));
  Alcotest.(check bool) "too many containers" false (Capacity.fits tight (res 9 3.0));
  Alcotest.(check bool) "too much memory" false (Capacity.fits tight (res 8 3.5))

(* ------------------------------------------------------------- Executor *)

let run ?policy ~capacity plan =
  Executor.run ?policy hive ~model schema ~capacity plan

let test_executes_when_capacity_is_there () =
  match run ~capacity:(Capacity.constant roomy) bhj_plan with
  | Executor.Completed { finish; total_wait; stages; _ } ->
      Alcotest.(check (float 1e-9)) "no waiting" 0.0 total_wait;
      Alcotest.(check int) "one stage" 1 (List.length stages);
      Alcotest.(check bool) "positive finish" true (finish > 0.0);
      let s = List.hd stages in
      Alcotest.(check bool) "ran as planned" true
        (Join_impl.equal s.Executor.impl Join_impl.Bhj && not s.Executor.adapted)
  | Executor.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

let test_fail_policy_fails_fast () =
  match run ~policy:Executor.Fail ~capacity:(Capacity.constant tight) bhj_plan with
  | Executor.Failed { stage; _ } -> Alcotest.(check int) "first stage" 1 stage
  | Executor.Completed _ -> Alcotest.fail "should not run in a tight cluster"

let test_wait_policy_waits_for_recovery () =
  (* Capacity is tight until t=500, then recovers. *)
  let capacity = Capacity.steps ~initial:tight [ (500.0, roomy) ] in
  match run ~policy:(Executor.Wait None) ~capacity bhj_plan with
  | Executor.Completed { total_wait; stages; _ } ->
      Alcotest.(check (float 1e-6)) "waited for recovery" 500.0 total_wait;
      Alcotest.(check (float 1e-6)) "stage started at 500" 500.0 (List.hd stages).Executor.start
  | Executor.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

let test_wait_policy_times_out () =
  let capacity = Capacity.steps ~initial:tight [ (500.0, roomy) ] in
  match run ~policy:(Executor.Wait (Some 100.0)) ~capacity bhj_plan with
  | Executor.Failed { reason; _ } ->
      Alcotest.(check bool) "timeout reason" true
        (String.length reason > 0 && reason.[0] = 'c')
  | Executor.Completed _ -> Alcotest.fail "should time out"

let test_wait_policy_never_recovers () =
  match run ~policy:(Executor.Wait None) ~capacity:(Capacity.constant tight) bhj_plan with
  | Executor.Failed _ -> ()
  | Executor.Completed _ -> Alcotest.fail "capacity never returns: must fail"

let test_downscale_runs_with_less () =
  match run ~policy:Executor.Downscale ~capacity:(Capacity.constant tight) bhj_plan with
  | Executor.Completed { stages; total_wait; _ } ->
      let s = List.hd stages in
      Alcotest.(check bool) "adapted" true s.Executor.adapted;
      Alcotest.(check (float 1e-9)) "no waiting" 0.0 total_wait;
      Alcotest.(check bool) "within tight bounds" true
        (Capacity.fits tight s.Executor.resources);
      (* 5.1 GB build side cannot broadcast into 3 GB containers: the
         downscale falls back to SMJ. *)
      Alcotest.(check bool) "fell back to SMJ" true (Join_impl.equal s.Executor.impl Join_impl.Smj)
  | Executor.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

let test_reoptimize_adapts_plan () =
  match run ~policy:Executor.Reoptimize ~capacity:(Capacity.constant tight) bhj_plan with
  | Executor.Completed { stages; _ } ->
      let s = List.hd stages in
      Alcotest.(check bool) "adapted" true s.Executor.adapted;
      Alcotest.(check bool) "within tight bounds" true (Capacity.fits tight s.Executor.resources)
  | Executor.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

let test_reoptimize_no_worse_than_downscale_here () =
  (* Re-optimization picks resources freely under the tight conditions, so
     it cannot lose to plain clamping on this single-join plan. *)
  match
    ( run ~policy:Executor.Reoptimize ~capacity:(Capacity.constant tight) bhj_plan,
      run ~policy:Executor.Downscale ~capacity:(Capacity.constant tight) bhj_plan )
  with
  | Executor.Completed { finish = a; _ }, Executor.Completed { finish = b; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "reopt %.0f <= downscale %.0f" a b)
        true (a <= b +. 1e-6)
  | _ -> Alcotest.fail "both should complete"

let test_multi_stage_plan_executes_in_order () =
  let plan =
    Join_tree.Join
      ( (Join_impl.Smj, res 40 3.0),
        Join_tree.Join ((Join_impl.Smj, res 40 3.0), Join_tree.Scan "orders", Join_tree.Scan "lineitem"),
        Join_tree.Scan "customer" )
  in
  match run ~capacity:(Capacity.constant roomy) plan with
  | Executor.Completed { stages; finish; _ } ->
      Alcotest.(check int) "two stages" 2 (List.length stages);
      let starts = List.map (fun s -> s.Executor.start) stages in
      (match starts with
      | [ s1; s2 ] ->
          Alcotest.(check bool) "sequential" true (s2 >= s1);
          Alcotest.(check bool) "finish after last start" true (finish > s2)
      | _ -> Alcotest.fail "two stages")
  | Executor.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

let test_mid_query_dip_with_wait () =
  (* The dip hits after the first stage of an SMJ plan completes quickly;
     only later stages wait. *)
  let plan =
    Join_tree.Join
      ( (Join_impl.Smj, res 40 3.0),
        Join_tree.Join ((Join_impl.Smj, res 40 3.0), Join_tree.Scan "orders", Join_tree.Scan "lineitem"),
        Join_tree.Scan "customer" )
  in
  (* First stage duration at 40x3 is a few hundred seconds; dip from t=1. *)
  let tiny = Conditions.make ~max_containers:10 ~max_gb:3.0 () in
  let capacity = Capacity.dip ~normal:roomy ~reduced:tiny ~from_t:1.0 ~until_t:1e6 in
  match run ~policy:Executor.Downscale ~capacity plan with
  | Executor.Completed { stages; _ } -> begin
      match stages with
      | [ s1; s2 ] ->
          Alcotest.(check bool) "first stage unadapted" true (not s1.Executor.adapted);
          Alcotest.(check bool) "second stage adapted" true s2.Executor.adapted
      | _ -> Alcotest.fail "two stages"
    end
  | Executor.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

let test_replan_remaining_adapts () =
  (* The whole remaining join graph is re-planned under the tight
     conditions: join order, operators, and resources together. The
     installed plan must run inside the dip. *)
  match run ~policy:Executor.Replan_remaining ~capacity:(Capacity.constant tight) bhj_plan with
  | Executor.Completed { stages; _ } ->
      let s = List.hd stages in
      Alcotest.(check bool) "adapted" true s.Executor.adapted;
      Alcotest.(check bool) "within tight bounds" true
        (Capacity.fits tight s.Executor.resources)
  | Executor.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

let test_replan_remaining_mid_query_dip () =
  (* The dip hits at the boundary between stages: the executed first join
     collapses into a measured pseudo-relation and the remainder is
     re-planned jointly — every post-dip stage runs within the reduced
     conditions, and the job never waits. *)
  let plan =
    Join_tree.Join
      ( (Join_impl.Smj, res 40 3.0),
        Join_tree.Join ((Join_impl.Smj, res 40 3.0), Join_tree.Scan "orders", Join_tree.Scan "lineitem"),
        Join_tree.Scan "customer" )
  in
  let tiny = Conditions.make ~max_containers:10 ~max_gb:3.0 () in
  let capacity = Capacity.dip ~normal:roomy ~reduced:tiny ~from_t:1.0 ~until_t:1e6 in
  match run ~policy:Executor.Replan_remaining ~capacity plan with
  | Executor.Completed { stages; total_wait; _ } ->
      Alcotest.(check (float 1e-9)) "never waits" 0.0 total_wait;
      Alcotest.(check bool) "first stage unadapted" true
        (not (List.hd stages).Executor.adapted);
      List.iteri
        (fun i s ->
          if i > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "stage %d within the dip" (i + 1))
              true
              (Capacity.fits tiny s.Executor.resources))
        stages
  | Executor.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

let test_replan_remaining_no_worse_than_reoptimize_here () =
  (* Re-planning the remainder searches a superset of per-stage repair's
     space (it may also reorder joins), so on this single-join plan the two
     coincide and neither can lose. *)
  match
    ( run ~policy:Executor.Replan_remaining ~capacity:(Capacity.constant tight) bhj_plan,
      run ~policy:Executor.Reoptimize ~capacity:(Capacity.constant tight) bhj_plan )
  with
  | Executor.Completed { finish = a; _ }, Executor.Completed { finish = b; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "replan %.0f <= reoptimize %.0f" a b)
        true (a <= b +. 1e-6)
  | _ -> Alcotest.fail "both should complete"

let test_executor_rejects_invalid_plan () =
  let bad = Join_tree.Join ((Join_impl.Smj, res 1 1.0), Join_tree.Scan "orders", Join_tree.Scan "orders") in
  Alcotest.check_raises "invalid" (Invalid_argument "Executor.run: invalid plan") (fun () ->
      ignore (run ~capacity:(Capacity.constant roomy) bad))

let test_gb_seconds_accumulates () =
  match run ~capacity:(Capacity.constant roomy) smj_plan with
  | Executor.Completed { gb_seconds; stages; _ } ->
      let expected =
        List.fold_left
          (fun acc s -> acc +. Resources.gb_seconds s.Executor.resources s.Executor.duration)
          0.0 stages
      in
      Alcotest.(check (float 1e-6)) "usage matches stages" expected gb_seconds
  | Executor.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

let prop_policies_always_terminate =
  QCheck.Test.make ~name:"every policy yields an outcome on random dips" ~count:25
    QCheck.(triple (int_range 1 100) (int_range 1 8) (int_range 0 4))
    (fun (from_t, max_c, policy_id) ->
      let policy =
        match policy_id with
        | 0 -> Executor.Wait (Some 1000.0)
        | 1 -> Executor.Fail
        | 2 -> Executor.Downscale
        | 3 -> Executor.Reoptimize
        | _ -> Executor.Replan_remaining
      in
      let reduced = Conditions.make ~max_containers:max_c ~max_gb:2.0 () in
      let capacity =
        Capacity.dip ~normal:roomy ~reduced ~from_t:(float_of_int from_t)
          ~until_t:(float_of_int (from_t + 500))
      in
      match run ~policy ~capacity smj_plan with
      | Executor.Completed _ | Executor.Failed _ -> true)

(* ------------------------------------------------------- Workload_runner *)

module Workload_runner = Raqo_scheduler.Workload_runner

let base_schema = Raqo_catalog.Tpch.schema ()

let test_workload_generate () =
  let rng = Raqo_util.Rng.create 5 in
  let subs = Workload_runner.generate rng ~n:50 ~arrival_rate:0.01 base_schema in
  Alcotest.(check int) "50 submissions" 50 (List.length subs);
  let arrivals = List.map (fun (s : Workload_runner.submission) -> s.arrival) subs in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ordered arrivals" true (nondecreasing arrivals);
  List.iter
    (fun (s : Workload_runner.submission) ->
      Alcotest.(check bool) "scale in (0,1]" true (s.data_scale > 0.0 && s.data_scale <= 1.0))
    subs

let test_workload_fifo_ordering () =
  let rng = Raqo_util.Rng.create 6 in
  let subs = Workload_runner.generate rng ~n:20 ~arrival_rate:0.01 base_schema in
  let planner = Workload_runner.default_planner hive ~resources:(res 20 5.0) in
  let summary, outcomes = Workload_runner.run hive base_schema subs ~planner in
  Alcotest.(check int) "all completed" 20 summary.Workload_runner.completed;
  (* FIFO: starts are nondecreasing and never before arrival. *)
  let rec check prev = function
    | [] -> ()
    | (o : Workload_runner.query_outcome) :: rest ->
        Alcotest.(check bool) "start >= arrival" true (o.started >= o.submission.arrival);
        Alcotest.(check bool) "FIFO starts" true (o.started >= prev);
        Alcotest.(check bool) "finish after start" true (o.finished >= o.started);
        check o.started rest
  in
  check 0.0 outcomes

let test_workload_raqo_beats_bad_guess () =
  let rng = Raqo_util.Rng.create 7 in
  let subs = Workload_runner.generate rng ~n:30 ~arrival_rate:0.01 base_schema in
  let default = Workload_runner.default_planner hive ~resources:(res 10 3.0) in
  let raqo =
    Workload_runner.raqo_planner ~model ~conditions:Raqo_cluster.Conditions.default ()
  in
  let sd, _ = Workload_runner.run hive base_schema subs ~planner:default in
  let sr, _ = Workload_runner.run hive base_schema subs ~planner:raqo in
  Alcotest.(check bool)
    (Printf.sprintf "RAQO makespan %.0f < default %.0f" sr.Workload_runner.makespan
       sd.Workload_runner.makespan)
    true
    (sr.Workload_runner.makespan < sd.Workload_runner.makespan)

let test_workload_failed_plans_counted () =
  let subs =
    [ { Workload_runner.arrival = 0.0; relations = Raqo_catalog.Tpch.q12; data_scale = 1.0 } ]
  in
  let planner _ _ = None in
  let summary, outcomes = Workload_runner.run hive base_schema subs ~planner in
  Alcotest.(check int) "failed" 1 summary.Workload_runner.failed;
  Alcotest.(check int) "completed" 0 summary.Workload_runner.completed;
  Alcotest.(check bool) "flagged" true (List.hd outcomes).Workload_runner.failed

let test_workload_across_query_cache_saves_planning () =
  let rng = Raqo_util.Rng.create 8 in
  let subs = Workload_runner.generate rng ~n:40 ~arrival_rate:0.01 base_schema in
  let run cache =
    let planner =
      Workload_runner.raqo_planner ~cache_across_queries:cache ~model
        ~conditions:Raqo_cluster.Conditions.default ()
    in
    let s, _ = Workload_runner.run hive base_schema subs ~planner in
    s.Workload_runner.total_plan_ms
  in
  let without = run false and with_cache = run true in
  Alcotest.(check bool)
    (Printf.sprintf "cached planning %.1f ms < uncached %.1f ms" with_cache without)
    true (with_cache < without)

let () =
  Alcotest.run "raqo_scheduler"
    [
      ( "capacity",
        [
          Alcotest.test_case "constant" `Quick test_capacity_constant;
          Alcotest.test_case "steps" `Quick test_capacity_steps;
          Alcotest.test_case "rejects unordered changes" `Quick
            test_capacity_steps_rejects_unordered;
          Alcotest.test_case "dip" `Quick test_capacity_dip;
          Alcotest.test_case "fits" `Quick test_capacity_fits;
        ] );
      ( "executor",
        [
          Alcotest.test_case "runs when capacity allows" `Quick
            test_executes_when_capacity_is_there;
          Alcotest.test_case "Fail fails fast" `Quick test_fail_policy_fails_fast;
          Alcotest.test_case "Wait waits for recovery" `Quick test_wait_policy_waits_for_recovery;
          Alcotest.test_case "Wait times out" `Quick test_wait_policy_times_out;
          Alcotest.test_case "Wait fails if capacity never returns" `Quick
            test_wait_policy_never_recovers;
          Alcotest.test_case "Downscale clamps and swaps operators" `Quick
            test_downscale_runs_with_less;
          Alcotest.test_case "Reoptimize adapts" `Quick test_reoptimize_adapts_plan;
          Alcotest.test_case "Reoptimize <= Downscale here" `Quick
            test_reoptimize_no_worse_than_downscale_here;
          Alcotest.test_case "multi-stage plans run in order" `Quick
            test_multi_stage_plan_executes_in_order;
          Alcotest.test_case "mid-query dip adapts later stages" `Quick
            test_mid_query_dip_with_wait;
          Alcotest.test_case "Replan_remaining adapts" `Quick test_replan_remaining_adapts;
          Alcotest.test_case "Replan_remaining re-plans after a mid-query dip" `Quick
            test_replan_remaining_mid_query_dip;
          Alcotest.test_case "Replan_remaining <= Reoptimize here" `Quick
            test_replan_remaining_no_worse_than_reoptimize_here;
          Alcotest.test_case "rejects invalid plans" `Quick test_executor_rejects_invalid_plan;
          Alcotest.test_case "usage accounting" `Quick test_gb_seconds_accumulates;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_policies_always_terminate ] );
      ( "workload_runner",
        [
          Alcotest.test_case "generation" `Quick test_workload_generate;
          Alcotest.test_case "FIFO ordering invariants" `Quick test_workload_fifo_ordering;
          Alcotest.test_case "RAQO beats a bad resource guess" `Quick
            test_workload_raqo_beats_bad_guess;
          Alcotest.test_case "failed plans accounted" `Quick test_workload_failed_plans_counted;
          Alcotest.test_case "across-query cache saves planning time" `Quick
            test_workload_across_query_cache_saves_planning;
        ] );
    ]
