(* Tests for Raqo_server: the JSON layer, the strict line protocol, the
   resident engine's admission control, and served-vs-oneshot bit-identity. *)

module Json = Raqo_server.Json
module Protocol = Raqo_server.Protocol
module Engine = Raqo_server.Engine
module Serve = Raqo_server.Serve
module Trace_gen = Raqo_server.Trace_gen

(* [contains s sub]: naive substring check (no extra deps in tests). *)
let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let sql3 =
  "select * from customer, orders, lineitem where c_custkey = o_custkey and \
   o_orderkey = l_orderkey"

let small_config =
  { Engine.default_config with jobs = 2; queue_capacity = 16; batch = 4 }

let with_engine ?(config = small_config) f =
  let t = Engine.create ~config () in
  Fun.protect ~finally:(fun () -> Engine.shutdown t) (fun () -> f t)

let req_line ?(id = "r1") ?(extra = "") sql =
  Printf.sprintf "{\"id\":%S,\"sql\":%S%s}" id sql extra

(* ------------------------------------------------------------------ Json *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("n", Json.Num 1.5);
        ("i", Json.Num 42.0);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Num 0.1; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_float_bits () =
  (* The wire float must round-trip bitwise: shortest-decimal encoding. *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Num f)) with
      | Ok (Json.Num f') ->
          Alcotest.(check bool)
            (Printf.sprintf "bits of %h" f)
            true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | _ -> Alcotest.fail "expected a number")
    [ 0.1; 1.0 /. 3.0; 1234.56789e10; -0.0; 4.2e-300 ]

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "{\"a\":}"; "[1,]"; "{\"a\":1} trailing"; "nul"; "\"unterminated" ]

(* -------------------------------------------------------------- Protocol *)

let parse_ok line =
  match Protocol.parse_request line with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse_request %S: %s" line e

let parse_err line =
  match Protocol.parse_request line with
  | Ok _ -> Alcotest.failf "parse_request accepted %S" line
  | Error e -> e

let test_protocol_defaults () =
  let r = parse_ok (req_line sql3) in
  Alcotest.(check string) "id" "r1" r.Protocol.id;
  Alcotest.(check int) "seed" 42 r.Protocol.seed;
  Alcotest.(check bool) "adaptive off" false r.Protocol.adaptive;
  Alcotest.(check string) "planner" "selinger" (Protocol.planner_name r.Protocol.planner);
  (match r.Protocol.mode with
  | Protocol.Raqo -> ()
  | Protocol.Qo _ -> Alcotest.fail "default mode should be raqo");
  match r.Protocol.payload with
  | Protocol.Sql s -> Alcotest.(check string) "sql" sql3 s
  | Protocol.Relations _ -> Alcotest.fail "expected sql payload"

let test_protocol_strict () =
  let e = parse_err (req_line sql3 ~extra:",\"plannre\":\"selinger\"") in
  Alcotest.(check bool) "names the typo" true (contains e "plannre");
  ignore (parse_err "{\"sql\":\"select * from orders, lineitem\"}");
  ignore (parse_err "{\"id\":\"x\"}");
  ignore (parse_err "{\"id\":\"x\",\"sql\":\"a\",\"relations\":[\"b\"]}");
  ignore (parse_err (req_line sql3 ~extra:",\"mode\":\"qo\""));
  ignore (parse_err (req_line sql3 ~extra:",\"containers\":4,\"gb\":2"));
  ignore (parse_err (req_line sql3 ~extra:",\"est_error\":\"skew\""));
  ignore (parse_err (req_line sql3 ~extra:",\"planner\":\"greedy\""));
  ignore (parse_err "not json at all")

let test_protocol_request_roundtrip () =
  let reqs =
    [
      parse_ok (req_line sql3);
      parse_ok
        (req_line sql3
           ~extra:",\"mode\":\"qo\",\"containers\":12,\"gb\":3.5,\"planner\":\"bushy_dp\"");
      parse_ok
        "{\"id\":\"a1\",\"relations\":[\"orders\",\"lineitem\"],\"adaptive\":true,\
         \"est_error\":\"skew=0.5:7\",\"seed\":9,\"engine\":\"spark\"}";
    ]
  in
  List.iter
    (fun r ->
      let r' = parse_ok (Protocol.request_to_json r) in
      Alcotest.(check bool) "request round-trips" true (r = r'))
    reqs

(* ---------------------------------------------------------------- Engine *)

let ok_response = function
  | Protocol.Planned { plan; cost; resources; adaptive; _ } ->
      (plan, cost, resources, adaptive)
  | Protocol.Rejected { reason; message; _ } ->
      Alcotest.failf "rejected (%s): %s" (Protocol.reason_name reason) message
  | Protocol.Health_ok _ -> Alcotest.fail "unexpected health response"
  | Protocol.Allocated _ -> Alcotest.fail "unexpected allocate response"

let test_engine_matches_sql_frontend () =
  (* The tentpole contract: a served plan is bit-identical (plan string,
     cost float, resources) to the one-shot Sql_frontend pipeline. *)
  with_engine (fun t ->
      let req = parse_ok (req_line sql3) in
      let plan_s, cost, resources, _ = ok_response (Engine.plan_request t req) in
      match
        Raqo.Sql_frontend.plan ~kind:Raqo.Cost_based.Selinger ~seed:42
          ~model:(Raqo.Models.hive ()) ~conditions:Raqo_cluster.Conditions.default
          ~schema:(Raqo_catalog.Tpch.schema ())
          ~columns:(Raqo_catalog.Tpch.columns ())
          sql3
      with
      | Error e -> Alcotest.failf "frontend failed: %s" e
      | Ok planned ->
          let expected_plan =
            Format.asprintf "%a" Raqo_plan.Join_tree.pp_joint planned.Raqo.Sql_frontend.plan
          in
          Alcotest.(check string) "plan" expected_plan plan_s;
          Alcotest.(check bool) "cost bits" true
            (Int64.equal
               (Int64.bits_of_float planned.Raqo.Sql_frontend.est_cost)
               (Int64.bits_of_float cost));
          Alcotest.(check int) "one resource tuple per join" 2 (List.length resources))

let test_engine_served_equals_oneshot () =
  (* Same requests through a warm shared-cache engine and through fresh
     one-shot engines: identical response lines, including repeats (which
     hit the cache on the served side). *)
  with_engine (fun t ->
      let trace = Trace_gen.generate ~seed:3 ~requests:12 () in
      List.iter
        (fun (_arrival, req) ->
          let served =
            Protocol.response_to_json (Engine.plan_request t req)
          in
          let alone = Protocol.response_to_json (Engine.oneshot req) in
          Alcotest.(check string)
            (Printf.sprintf "request %s" req.Protocol.id)
            alone served)
        trace;
      Alcotest.(check bool) "warm engine actually hit its cache" true
        (Raqo_resource.Shared_plan_cache.hits (Engine.cache t) > 0))

let test_engine_error_responses () =
  with_engine (fun t ->
      (match Engine.plan_request t (parse_ok (req_line "select * from")) with
      | Protocol.Rejected { reason = Protocol.Bad_request; id = Some "r1"; _ } -> ()
      | _ -> Alcotest.fail "expected bad_request for broken SQL");
      (match
         Engine.plan_request t
           (parse_ok "{\"id\":\"u\",\"relations\":[\"orders\",\"nope\"]}")
       with
      | Protocol.Rejected { reason = Protocol.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "expected bad_request for unknown relation");
      match
        Engine.plan_request t
          (parse_ok "{\"id\":\"v\",\"relations\":[\"customer\",\"part\"]}")
      with
      | Protocol.Rejected { reason = Protocol.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "expected bad_request for a disconnected join graph")

let test_engine_qo_and_adaptive () =
  with_engine (fun t ->
      let _, _, qo_resources, _ =
        ok_response
          (Engine.plan_request t
             (parse_ok (req_line sql3 ~extra:",\"mode\":\"qo\",\"containers\":20,\"gb\":4")))
      in
      List.iter
        (fun (c, g) ->
          Alcotest.(check int) "qo containers fixed" 20 c;
          Alcotest.(check (float 0.0)) "qo gb fixed" 4.0 g)
        qo_resources;
      let _, _, _, adaptive =
        ok_response
          (Engine.plan_request t
             (parse_ok (req_line sql3 ~extra:",\"adaptive\":true,\"est_error\":\"skew=0.6:5\"")))
      in
      match adaptive with
      | None -> Alcotest.fail "expected an adaptive summary"
      | Some a -> (
          match (a.Protocol.static_outcome, a.Protocol.adaptive_outcome) with
          | Protocol.Finished s, Protocol.Finished s' ->
              Alcotest.(check bool) "never worse" true (s' <= s)
          | Protocol.Finished _, Protocol.Oom _ ->
              Alcotest.fail "adaptive OOMed where the static plan finished"
          | Protocol.Oom _, _ -> ()))

let test_admission_bounded () =
  let config = { Engine.default_config with jobs = 2; queue_capacity = 4; batch = 3 } in
  with_engine ~config (fun t ->
      let req i = parse_ok (req_line sql3 ~id:(Printf.sprintf "q%d" i)) in
      let rejections =
        List.filter_map (fun i -> Engine.submit t (req i)) (List.init 10 (fun i -> i))
      in
      Alcotest.(check int) "queue bounded at capacity" 4 (Engine.queue_depth t);
      Alcotest.(check int) "typed rejections for the overflow" 6 (List.length rejections);
      List.iter
        (fun r ->
          match r with
          | Protocol.Rejected { reason = Protocol.Overloaded; _ } -> ()
          | _ -> Alcotest.fail "overflow must reject as overloaded")
        rejections;
      Alcotest.(check int) "admitted counter" 4 (Engine.admitted t);
      Alcotest.(check int) "rejected counter" 6 (Engine.rejected t);
      let wave = Engine.process_wave t in
      Alcotest.(check int) "wave bounded by batch" 3 (List.length wave);
      let rest = Engine.drain t in
      Alcotest.(check int) "drain finishes the queue" 1 (List.length rest);
      Alcotest.(check int) "responses counter" 4 (Engine.responses t);
      List.iter
        (fun ((req : Protocol.request), resp) ->
          Alcotest.(check (option string))
            "response id matches" (Some req.Protocol.id) (Protocol.response_id resp))
        (wave @ rest))

(* --------------------------------------------------------------- Tenants *)

let test_tenant_roundtrip () =
  let bare = parse_ok (req_line sql3) in
  Alcotest.(check (option string)) "default has no tenant" None bare.Protocol.tenant;
  Alcotest.(check bool) "absent tenant stays off the wire" false
    (contains (Protocol.request_to_json bare) "tenant");
  let r = parse_ok (req_line sql3 ~extra:",\"tenant\":\"gold\"") in
  Alcotest.(check (option string)) "tenant parsed" (Some "gold") r.Protocol.tenant;
  let r' = parse_ok (Protocol.request_to_json r) in
  Alcotest.(check bool) "tenant round-trips" true (r = r');
  let e = parse_err (req_line sql3 ~extra:",\"tenant\":\"\"") in
  Alcotest.(check bool) "empty tenant rejected" true (contains e "tenant")

let test_tenant_quota () =
  let config =
    { Engine.default_config with jobs = 1; queue_capacity = 16; batch = 16;
      tenant_quota = Some 2 }
  in
  with_engine ~config (fun t ->
      let req tenant i =
        let extra =
          match tenant with
          | None -> ""
          | Some x -> Printf.sprintf ",\"tenant\":%S" x
        in
        parse_ok (req_line sql3 ~id:(Printf.sprintf "%s%d" (Option.value tenant ~default:"d") i) ~extra)
      in
      (* Two gold queries fit the quota, the third sheds — while the
         untenanted query rides the global queue untouched. *)
      Alcotest.(check bool) "gold 1 admitted" true (Engine.submit t (req (Some "gold") 1) = None);
      Alcotest.(check bool) "gold 2 admitted" true (Engine.submit t (req (Some "gold") 2) = None);
      (match Engine.submit t (req (Some "gold") 3) with
      | Some (Protocol.Rejected { reason = Protocol.Overloaded; message; _ }) ->
          Alcotest.(check bool) "rejection names the tenant" true
            (contains message "\"gold\"")
      | _ -> Alcotest.fail "third gold query must shed as overloaded");
      Alcotest.(check bool) "default tenant unaffected" true
        (Engine.submit t (req None 1) = None);
      Alcotest.(check bool) "per-tenant queued/rejected" true
        (Engine.tenant_stats t
        = [ ("default", (1, 0, 0)); ("gold", (2, 0, 1)) ]);
      let _ = Engine.drain t in
      Alcotest.(check bool) "planned accounted per tenant" true
        (Engine.tenant_stats t
        = [ ("default", (0, 1, 0)); ("gold", (0, 2, 1)) ]))

(* -------------------------------------------------------------- Allocate *)

let alloc_line =
  "{\"op\":\"allocate\",\"id\":\"al1\",\"budget\":12,\"fairness\":0.5,\
   \"search\":\"exact\",\"seed\":7,\"queries\":[{\"id\":\"q1\",\"relations\":\
   [\"orders\",\"lineitem\"]},{\"id\":\"q2\",\"relations\":[\"customer\",\
   \"orders\"],\"tenant\":\"gold\",\"weight\":2,\"arrival\":3,\"slo\":500}]}"

let parse_alloc line =
  match Protocol.parse_line line with
  | Ok (Protocol.Allocate a) -> a
  | Ok _ -> Alcotest.failf "parse_line %S: not an allocate request" line
  | Error e -> Alcotest.failf "parse_line %S: %s" line e

let alloc_err line =
  match Protocol.parse_line line with
  | Ok _ -> Alcotest.failf "parse_line accepted %S" line
  | Error e -> e

let test_allocate_parse () =
  let a = parse_alloc alloc_line in
  Alcotest.(check int) "budget" 12 a.Protocol.budget;
  Alcotest.(check string) "search" "exact" a.Protocol.search;
  Alcotest.(check int) "two queries" 2 (List.length a.Protocol.queries);
  (match a.Protocol.queries with
  | _ :: (q2 : Protocol.alloc_query) :: _ ->
      Alcotest.(check (option string)) "query tenant" (Some "gold") q2.Protocol.tenant;
      Alcotest.(check (option (float 0.0))) "query slo" (Some 500.0) q2.Protocol.slo
  | _ -> Alcotest.fail "expected two queries");
  let e = alloc_err "{\"op\":\"allocate\",\"id\":\"x\",\"budget\":0,\"queries\":[{\"id\":\"q\",\"relations\":[\"orders\"]}]}" in
  Alcotest.(check bool) "bad budget named" true (contains e "budget");
  let e = alloc_err "{\"op\":\"allocate\",\"id\":\"x\",\"budget\":4,\"queries\":[{\"id\":\"q\",\"relations\":[\"orders\"]},{\"id\":\"q\",\"relations\":[\"orders\"]}]}" in
  Alcotest.(check bool) "duplicate qid named" true (contains e "q");
  let e = alloc_err "{\"op\":\"allocate\",\"id\":\"x\",\"budget\":4,\"objective\":\"speed\",\"queries\":[{\"id\":\"q\",\"relations\":[\"orders\"]}]}" in
  Alcotest.(check bool) "bad objective names choices" true (contains e "makespan");
  let e = alloc_err "{\"op\":\"allocate\",\"id\":\"x\",\"budget\":4,\"search\":\"brute\",\"queries\":[{\"id\":\"q\",\"relations\":[\"orders\"]}]}" in
  Alcotest.(check bool) "bad search names choices" true (contains e "randomized");
  let e = alloc_err "{\"op\":\"allocate\",\"id\":\"x\",\"budget\":4,\"quieres\":[]}" in
  Alcotest.(check bool) "unknown field named" true (contains e "quieres")

let test_allocate_served_equals_oneshot () =
  let areq = parse_alloc alloc_line in
  let alone = Protocol.response_to_json (Engine.oneshot_allocate areq) in
  Alcotest.(check bool) "allocate response is ok" true
    (contains alone "\"status\":\"ok\"" && contains alone "\"op\":\"allocate\"");
  with_engine (fun t ->
      match Serve.serve_lines t [ alloc_line ] with
      | [ served ] ->
          Alcotest.(check string) "served equals oneshot, byte for byte" alone served
      | out -> Alcotest.failf "expected one response, got %d" (List.length out))

(* ----------------------------------------------------------------- Serve *)

let test_serve_lines_end_to_end () =
  with_engine (fun t ->
      let lines =
        [
          req_line sql3 ~id:"a";
          "this is not json";
          "";
          req_line "select * from orders, lineitem where o_orderkey = l_orderkey" ~id:"b";
        ]
      in
      let out = Serve.serve_lines t lines in
      Alcotest.(check int) "three responses (blank line ignored)" 3 (List.length out);
      let parsed =
        List.map
          (fun l -> match Json.parse l with Ok v -> v | Error e -> Alcotest.fail e)
          out
      in
      let status v = Json.member "status" v |> Option.get |> Json.to_str |> Option.get in
      (* The malformed line answers first (immediate rejection), then the
         admitted requests in order. *)
      Alcotest.(check (list string))
        "statuses" [ "error"; "ok"; "ok" ] (List.map status parsed);
      let ids = List.filter_map (fun v -> Option.bind (Json.member "id" v) Json.to_str) parsed in
      Alcotest.(check (list string)) "admitted ids in order" [ "a"; "b" ] ids)

let test_serve_lines_deterministic_across_engines () =
  let lines =
    List.map
      (fun (_a, req) -> Protocol.request_to_json req)
      (Trace_gen.generate ~seed:11 ~requests:10 ())
  in
  let serve () = with_engine (fun t -> Serve.serve_lines t lines) in
  let a = serve () and b = serve () in
  Alcotest.(check (list string)) "two engines, identical bytes" a b

let test_serve_tcp_roundtrip () =
  (* One real socket round-trip: a client connects, sends two requests,
     reads two responses, closes; the server exits after max_connections. *)
  with_engine (fun t ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> Alcotest.fail "no port"
      in
      Unix.close sock;
      let server = Domain.spawn (fun () -> Serve.serve_tcp ~max_connections:1 t ~port) in
      let rec connect tries =
        let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        match Unix.connect c (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
        | () -> c
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) when tries > 0 ->
            Unix.close c;
            Unix.sleepf 0.05;
            connect (tries - 1)
      in
      let c = connect 100 in
      let payload = req_line sql3 ~id:"tcp1" ^ "\n" ^ req_line sql3 ~id:"tcp2" ^ "\n" in
      ignore (Unix.write_substring c payload 0 (String.length payload));
      Unix.shutdown c Unix.SHUTDOWN_SEND;
      let ic = Unix.in_channel_of_descr c in
      let l1 = input_line ic in
      let l2 = input_line ic in
      Unix.close c;
      Domain.join server;
      let expected =
        Protocol.response_to_json (Engine.oneshot (parse_ok (req_line sql3 ~id:"tcp1")))
      in
      Alcotest.(check string) "tcp response 1 is the oneshot answer" expected l1;
      Alcotest.(check bool) "tcp response 2 carries its id" true
        (contains l2 "\"id\":\"tcp2\""))

(* ---------------------------------------------------------------- Health *)

let test_parse_health_line () =
  (match Protocol.parse_line "{\"op\":\"health\"}" with
  | Ok (Protocol.Health { id = None }) -> ()
  | _ -> Alcotest.fail "expected an id-less health probe");
  (match Protocol.parse_line "{\"op\":\"health\",\"id\":\"h1\"}" with
  | Ok (Protocol.Health { id = Some "h1" }) -> ()
  | _ -> Alcotest.fail "expected a health probe with id h1");
  (match Protocol.parse_line "{\"op\":\"health\",\"sql\":\"select\"}" with
  | Error m -> Alcotest.(check bool) "names the stray field" true (contains m "sql")
  | Ok _ -> Alcotest.fail "health must reject extra fields");
  (match Protocol.parse_line "{\"op\":\"drain\"}" with
  | Error m -> Alcotest.(check bool) "unknown op named" true (contains m "drain")
  | Ok _ -> Alcotest.fail "unknown op must be rejected");
  (* Lines without "op" fall through to request parsing unchanged. *)
  match Protocol.parse_line (req_line sql3) with
  | Ok (Protocol.Request r) -> Alcotest.(check string) "request id" "r1" r.Protocol.id
  | _ -> Alcotest.fail "op-less line must parse as a request"

let test_health_bypasses_admission () =
  (* Fill the queue past capacity, then probe: the health answer must come
     back ready even though every further request is shed. *)
  let config = { Engine.default_config with jobs = 1; queue_capacity = 2 } in
  with_engine ~config (fun t ->
      List.iter
        (fun i -> ignore (Engine.submit t (parse_ok (req_line sql3 ~id:(Printf.sprintf "q%d" i)))))
        [ 1; 2; 3; 4 ];
      Alcotest.(check int) "queue is full" 2 (Engine.queue_depth t);
      (match Engine.health t ~id:(Some "probe") with
      | Protocol.Health_ok { id = Some "probe"; queue_depth = 2; ready = true; _ } -> ()
      | _ -> Alcotest.fail "expected a ready health answer under overload");
      ignore (Engine.drain t))

let test_serve_lines_health () =
  with_engine (fun t ->
      let out =
        Serve.serve_lines t
          [ "{\"op\":\"health\",\"id\":\"h\"}"; req_line sql3 ~id:"a" ]
      in
      Alcotest.(check int) "two responses" 2 (List.length out);
      let health = List.hd out in
      Alcotest.(check bool) "health answers first (no queueing)" true
        (contains health "\"op\":\"health\"" && contains health "\"id\":\"h\"");
      Alcotest.(check bool) "reports readiness" true (contains health "\"ready\":true"))

let test_oneshot_health_deterministic () =
  let a = Protocol.response_to_json (Engine.oneshot_health ~id:(Some "h") ()) in
  let b = Protocol.response_to_json (Engine.oneshot_health ~id:(Some "h") ()) in
  Alcotest.(check string) "byte-identical across calls" a b;
  Alcotest.(check bool) "depth zero" true (contains a "\"queue_depth\":0")

(* --------------------------------------------------------------- Rewrite *)

let projected_sql =
  "select o_orderkey from customer, orders, lineitem where c_custkey = o_custkey and \
   o_orderkey = l_orderkey"

let test_rewrite_summary_in_response () =
  with_engine (fun t ->
      (* Projected SQL leaves customer and lineitem join-only: the rewrite
         summary must surface, and the JSON must carry the "rewrite" field. *)
      let resp = Engine.plan_request t (parse_ok (req_line projected_sql ~id:"rw")) in
      (match resp with
      | Protocol.Planned { rewrite = Some r; _ } ->
          Alcotest.(check bool) "a rule fired" true (r.Protocol.fired <> [])
      | Protocol.Planned { rewrite = None; _ } ->
          Alcotest.fail "expected a rewrite summary on projected SQL"
      | _ -> Alcotest.fail "expected a plan");
      Alcotest.(check bool) "wire field present" true
        (contains (Protocol.response_to_json resp) "\"rewrite\":{");
      (* select * keeps every relation referenced: pushdown-only queries and
         hint-free relation lists stay summary-free, preserving historical
         response bytes. *)
      let plain =
        Engine.plan_request t (parse_ok "{\"id\":\"p\",\"relations\":[\"orders\",\"lineitem\"]}")
      in
      match plain with
      | Protocol.Planned { rewrite = None; _ } -> ()
      | Protocol.Planned { rewrite = Some _; _ } ->
          Alcotest.fail "relation-list requests must carry no rewrite summary"
      | _ -> Alcotest.fail "expected a plan")

let test_rewrite_served_equals_oneshot () =
  with_engine (fun t ->
      let req = parse_ok (req_line projected_sql ~id:"rw2") in
      let served = Protocol.response_to_json (Engine.plan_request t req) in
      let alone = Protocol.response_to_json (Engine.oneshot req) in
      Alcotest.(check string) "rewritten responses byte-identical" alone served;
      (* And rewrite off on both sides is equally self-consistent. *)
      let config = { small_config with Engine.rewrite = false } in
      let off = Engine.create ~config () in
      Fun.protect
        ~finally:(fun () -> Engine.shutdown off)
        (fun () ->
          let served_off = Protocol.response_to_json (Engine.plan_request off req) in
          let alone_off = Protocol.response_to_json (Engine.oneshot ~config req) in
          Alcotest.(check string) "rewrite-off byte-identical" alone_off served_off;
          Alcotest.(check bool) "rewrite-off carries no summary" false
            (contains served_off "\"rewrite\":{")))

(* ------------------------------------------------------------- Trace_gen *)

let test_trace_roundtrip () =
  let trace = Trace_gen.generate ~seed:5 ~requests:25 () in
  Alcotest.(check int) "count" 25 (List.length trace);
  let arrivals = List.map fst trace in
  Alcotest.(check bool) "arrivals nondecreasing" true
    (List.for_all2 (fun a b -> a <= b) (List.filteri (fun i _ -> i < 24) arrivals)
       (List.tl arrivals));
  let lines = Trace_gen.to_lines trace in
  let back =
    List.map
      (fun l ->
        match Trace_gen.parse_line l with Ok x -> x | Error e -> Alcotest.fail e)
      lines
  in
  Alcotest.(check bool) "to_lines/parse_line round-trips" true (trace = back);
  let again = Trace_gen.generate ~seed:5 ~requests:25 () in
  Alcotest.(check bool) "deterministic in seed" true (trace = again)

let () =
  Alcotest.run "raqo_server"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "float bit round-trip" `Quick test_json_float_bits;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "defaults" `Quick test_protocol_defaults;
          Alcotest.test_case "strict parsing" `Quick test_protocol_strict;
          Alcotest.test_case "request round-trip" `Quick test_protocol_request_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "matches the sql frontend bitwise" `Quick
            test_engine_matches_sql_frontend;
          Alcotest.test_case "served equals oneshot" `Quick
            test_engine_served_equals_oneshot;
          Alcotest.test_case "typed error responses" `Quick test_engine_error_responses;
          Alcotest.test_case "qo mode and adaptive summary" `Quick
            test_engine_qo_and_adaptive;
          Alcotest.test_case "bounded admission, typed shedding" `Quick
            test_admission_bounded;
        ] );
      ( "tenants",
        [
          Alcotest.test_case "tenant field round-trips" `Quick test_tenant_roundtrip;
          Alcotest.test_case "per-tenant quota and accounting" `Quick test_tenant_quota;
        ] );
      ( "allocate",
        [
          Alcotest.test_case "strict parsing" `Quick test_allocate_parse;
          Alcotest.test_case "served equals oneshot" `Quick
            test_allocate_served_equals_oneshot;
        ] );
      ( "serve",
        [
          Alcotest.test_case "line loop end to end" `Quick test_serve_lines_end_to_end;
          Alcotest.test_case "deterministic across engines" `Quick
            test_serve_lines_deterministic_across_engines;
          Alcotest.test_case "tcp round-trip" `Quick test_serve_tcp_roundtrip;
        ] );
      ( "health",
        [
          Alcotest.test_case "parse_line grammar" `Quick test_parse_health_line;
          Alcotest.test_case "bypasses admission" `Quick test_health_bypasses_admission;
          Alcotest.test_case "serve_lines answers probes" `Quick test_serve_lines_health;
          Alcotest.test_case "oneshot health deterministic" `Quick
            test_oneshot_health_deterministic;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "summary in response" `Quick test_rewrite_summary_in_response;
          Alcotest.test_case "served equals oneshot" `Quick
            test_rewrite_served_equals_oneshot;
        ] );
      ( "trace_gen",
        [ Alcotest.test_case "round-trip & determinism" `Quick test_trace_roundtrip ] );
    ]
