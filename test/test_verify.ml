(* Tests for Raqo_verify: the invariant checker must reject hand-crafted
   invalid plans with the right diagnostics, the differential oracle must
   pass on clean instances and catch deliberately broken costers, and the
   fuzz harness must shrink an injected failure to a minimal repro. *)

module Diagnostic = Raqo_verify.Diagnostic
module Invariant = Raqo_verify.Invariant
module Oracle = Raqo_verify.Oracle
module Fuzz = Raqo_verify.Fuzz
module Coster = Raqo_planner.Coster
module Selinger = Raqo_planner.Selinger
module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources
module Schema = Raqo_catalog.Schema
module Objective = Raqo_cost.Objective
module Plan_cache = Raqo_resource.Plan_cache
module Cost_based = Raqo.Cost_based

let res nc gb = Resources.make ~containers:nc ~container_gb:gb
let qsuite = List.map QCheck_alcotest.to_alcotest

(* One deterministic instance shared by the hand-crafted-plan tests. *)
let inst = Oracle.instance 7
let fixed_coster () = Coster.fixed Oracle.model inst.Oracle.schema Oracle.fixed_resources

let selinger_plan () =
  match Selinger.optimize (fixed_coster ()) inst.Oracle.schema inst.Oracle.relations with
  | Some plan -> plan
  | None -> Alcotest.fail "Selinger found no plan on the shared instance"

let has invariant diags = List.exists (fun d -> d.Diagnostic.invariant = invariant) diags

let check_has invariant diags =
  Alcotest.(check bool)
    (Printf.sprintf "diagnostic %s reported in:\n%s" invariant (Diagnostic.render diags))
    true (has invariant diags)

let check_clean what diags =
  Alcotest.(check string) (what ^ " reports no violations") "" (Diagnostic.render diags)

(* ------------------------------------------------------ invariant checker *)

let test_checker_accepts_real_plan () =
  let plan = selinger_plan () in
  check_clean "a real Selinger plan"
    (Invariant.check_joint ~model:Oracle.model ~conditions:Oracle.conditions
       ~schema:inst.Oracle.schema ~expected:inst.Oracle.relations plan)

let test_checker_rejects_duplicate_leaf () =
  match inst.Oracle.relations with
  | a :: b :: _ ->
      let annot = (Join_impl.Smj, Oracle.fixed_resources) in
      let tree =
        Join_tree.Join (annot, Join_tree.Scan a, Join_tree.Join (annot, Join_tree.Scan a, Join_tree.Scan b))
      in
      let diags = Invariant.check_shape ~schema:inst.Oracle.schema ~expected:[ a; b ] tree in
      check_has "tree/duplicate-leaf" diags
  | _ -> Alcotest.fail "instance has fewer than two relations"

let test_checker_rejects_wrong_leaf_set () =
  match inst.Oracle.relations with
  | a :: b :: _ ->
      let diags =
        Invariant.check_shape ~schema:inst.Oracle.schema ~expected:[ a; b ] (Join_tree.Scan a)
      in
      check_has "tree/missing-leaf" diags;
      let diags =
        Invariant.check_shape ~schema:inst.Oracle.schema ~expected:[ a ]
          (Join_tree.Join ((), Join_tree.Scan a, Join_tree.Scan b))
      in
      check_has "tree/extra-leaf" diags;
      let diags =
        Invariant.check_shape ~schema:inst.Oracle.schema ~expected:[ a ]
          (Join_tree.Scan "no_such_relation")
      in
      check_has "tree/unknown-relation" diags
  | _ -> Alcotest.fail "instance has fewer than two relations"

let test_checker_rejects_out_of_bounds_resources () =
  let tree, _ = selinger_plan () in
  let bad = Join_tree.map_annot (fun (impl, _) -> (impl, res 99 50.0)) tree in
  let diags = Invariant.check_resources ~conditions:Oracle.conditions bad in
  check_has "resources/containers-out-of-bounds" diags;
  check_has "resources/memory-out-of-bounds" diags

let test_checker_rejects_bhj_oom () =
  match inst.Oracle.relations with
  | a :: b :: _ ->
      let small_gb =
        Float.min
          (Schema.join_size_gb inst.Oracle.schema [ a ])
          (Schema.join_size_gb inst.Oracle.schema [ b ])
      in
      Alcotest.(check bool) "build side is non-trivial" true (small_gb > 0.0);
      (* Memory so tight the build side cannot fit under any headroom. *)
      let starved = res 1 (small_gb *. 0.01) in
      let tree =
        Join_tree.Join ((Join_impl.Bhj, starved), Join_tree.Scan a, Join_tree.Scan b)
      in
      check_has "resources/bhj-oom"
        (Invariant.check_bhj_memory ~model:Oracle.model ~schema:inst.Oracle.schema tree)
  | _ -> Alcotest.fail "instance has fewer than two relations"

let test_checker_rejects_bad_costs () =
  check_has "cost/negative" (Invariant.check_cost (-1.0));
  check_has "cost/non-finite" (Invariant.check_cost Float.nan);
  check_has "cost/non-finite" (Invariant.check_cost Float.infinity);
  check_clean "a positive finite cost" (Invariant.check_cost 12.5)

let test_checker_rejects_dominated_pareto () =
  let describe o = Format.asprintf "%a" Objective.pp o in
  let id o = o in
  let dominated =
    [ Objective.make ~time:1.0 ~money:1.0; Objective.make ~time:2.0 ~money:2.0 ]
  in
  check_has "pareto/dominated" (Invariant.check_pareto ~objective:id ~describe dominated);
  let front =
    [ Objective.make ~time:1.0 ~money:3.0; Objective.make ~time:3.0 ~money:1.0 ]
  in
  check_clean "a true Pareto front" (Invariant.check_pareto ~objective:id ~describe front)

let test_cache_lookup_checker_passes_on_real_cache () =
  let cache = Plan_cache.create () in
  Plan_cache.insert cache ~key:"k" ~data_gb:1.0 (res 2 2.0);
  Plan_cache.insert cache ~key:"k" ~data_gb:2.0 (res 4 3.0);
  List.iter
    (fun data_gb ->
      List.iter
        (fun lookup ->
          check_clean "a well-behaved cache lookup"
            (Invariant.check_cache_lookup cache ~key:"k" ~data_gb lookup))
        [ Plan_cache.Exact; Plan_cache.Nearest_neighbor 0.6; Plan_cache.Weighted_average 0.6 ])
    [ 0.5; 1.0; 1.5; 2.0; 3.0 ]

(* ---------------------------------------------------- differential oracle *)

(* Sequential-only oracle runs keep the unit tests fast; the parallel arms
   get their own dedicated test below. *)
let seq_jobs = []

let test_oracle_clean_instance () =
  check_clean "a clean instance" (Oracle.check ~jobs:seq_jobs (Oracle.instance 1))

let test_oracle_clean_parallel_arms () =
  check_clean "a clean instance with parallel arms" (Oracle.check ~jobs:[ 2 ] (Oracle.instance 3))

(* The acceptance-criterion fault: a sign-flipped cost term in one arm's
   coster. The oracle must notice both the impossible (negative) plan cost
   and the broken cross-planner ordering. *)
let sign_flip ~arm coster =
  if arm = "selinger" then
    {
      Coster.name = coster.Coster.name ^ "+sign-flip";
      best_join =
        (fun ~left ~right ->
          Option.map
            (fun c -> { c with Coster.cost = -.c.Coster.cost })
            (coster.Coster.best_join ~left ~right));
    }
  else coster

let test_oracle_catches_sign_flip () =
  let diags = Oracle.check ~jobs:seq_jobs ~fault:sign_flip (Oracle.instance 5) in
  check_has "cost/negative" diags;
  check_has "oracle/dpsub-above-selinger" diags

let test_oracle_catches_memo_drift () =
  (* A silently drifting memoized coster: costs inflated by 5% only on the
     memoized arm must break the memo-equivalence relation. *)
  let drift ~arm coster =
    if arm = "selinger-memo" then
      {
        Coster.name = coster.Coster.name ^ "+drift";
        best_join =
          (fun ~left ~right ->
            Option.map
              (fun c -> { c with Coster.cost = c.Coster.cost *. 1.05 })
              (coster.Coster.best_join ~left ~right));
      }
    else coster
  in
  check_has "oracle/memo-vs-plain" (Oracle.check ~jobs:seq_jobs ~fault:drift (Oracle.instance 5))

let test_oracle_catches_broken_joint_arm () =
  (* Overstating every joint cost makes "joint <= fixed baseline" fail. *)
  let inflate ~arm coster =
    if arm = "raqo-bf" then
      {
        Coster.name = coster.Coster.name ^ "+inflate";
        best_join =
          (fun ~left ~right ->
            Option.map
              (fun c -> { c with Coster.cost = (c.Coster.cost *. 10.0) +. 1.0 })
              (coster.Coster.best_join ~left ~right));
      }
    else coster
  in
  let diags = Oracle.check ~jobs:seq_jobs ~fault:inflate (Oracle.instance 5) in
  Alcotest.(check bool)
    (Printf.sprintf "some oracle/raqo-* relation violated in:\n%s" (Diagnostic.render diags))
    true
    (List.exists
       (fun d -> String.length d.Diagnostic.invariant >= 11 && String.sub d.Diagnostic.invariant 0 11 = "oracle/raqo")
       diags)

(* ------------------------------------------------------------ fuzz harness *)

let test_fuzz_clean_seeds () =
  let reports = Fuzz.run ~jobs:seq_jobs ~start:1 ~seeds:5 () in
  Alcotest.(check int) "five clean seeds" 0 (List.length reports)

let test_fuzz_shrinks_sign_flip () =
  let t = Oracle.instance 5 in
  let report = Fuzz.report ~jobs:seq_jobs ~fault:sign_flip t in
  let rendered = Fuzz.render report in
  (* The shrunk repro is part of the acceptance criterion: print it. *)
  print_string rendered;
  Alcotest.(check bool) "original instance failed" true (report.Fuzz.diagnostics <> []);
  (* A sign-flipped coster fails on any join, so the minimal failing query
     is a single connected pair of relations. *)
  Alcotest.(check int) "shrunk to a single join" 2 (List.length report.Fuzz.minimized);
  Alcotest.(check bool) "minimized query is a subset" true
    (List.for_all (fun r -> List.mem r t.Oracle.relations) report.Fuzz.minimized);
  Alcotest.(check bool) "minimized query stays connected" true
    (Schema.joinable t.Oracle.schema report.Fuzz.minimized);
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "repro names the seed" true (contains "seed=5" rendered);
  Alcotest.(check bool) "repro gives a replay command" true (contains "raqo fuzz --seeds 1" rendered)

(* ----------------------------------------------------- production costers *)

let test_cost_based_coster_reproduces_cost () =
  (* The Cost_based.coster hook must re-cost an emitted plan's shape to the
     reported cost (the exact-lookup cache keeps the coster deterministic). *)
  let cb =
    Cost_based.create ~model:Oracle.model ~conditions:Oracle.conditions inst.Oracle.schema
  in
  match Cost_based.optimize cb inst.Oracle.relations with
  | None -> Alcotest.fail "cost-based RAQO found no plan"
  | Some (tree, cost) -> (
      check_clean "the emitted joint plan"
        (Invariant.check_joint ~model:Oracle.model ~conditions:Oracle.conditions
           ~schema:inst.Oracle.schema ~expected:inst.Oracle.relations (tree, cost));
      match Coster.cost_tree (Cost_based.coster cb) (Coster.shape_of tree) with
      | None -> Alcotest.fail "re-costing the emitted shape failed"
      | Some (_, recost) ->
          Alcotest.(check (float 1e-6)) "re-costed shape matches reported cost" cost recost)

let test_counting_coster_counts () =
  let coster, count = Coster.counting (fixed_coster ()) in
  Alcotest.(check int) "starts at zero" 0 (count ());
  (match inst.Oracle.relations with
  | a :: b :: _ -> ignore (coster.Coster.best_join ~left:[ a ] ~right:[ b ])
  | _ -> ());
  Alcotest.(check int) "one invocation counted" 1 (count ());
  ignore (Selinger.optimize coster inst.Oracle.schema inst.Oracle.relations);
  Alcotest.(check bool) "Selinger drove further lookups" true (count () > 1)

(* ------------------------------------------------------------- properties *)

let prop_selinger_plans_pass_checker =
  QCheck.Test.make ~count:30 ~name:"random Selinger plans pass the invariant checker"
    QCheck.(int_range 1 500)
    (fun seed ->
      let t = Oracle.instance seed in
      let coster = Coster.fixed Oracle.model t.Oracle.schema Oracle.fixed_resources in
      match Selinger.optimize coster t.Oracle.schema t.Oracle.relations with
      | None -> QCheck.Test.fail_report "no plan"
      | Some plan ->
          let diags =
            Invariant.check_joint ~model:Oracle.model ~conditions:Oracle.conditions
              ~schema:t.Oracle.schema ~expected:t.Oracle.relations plan
          in
          diags = [] || QCheck.Test.fail_report (Diagnostic.render diags))

let prop_raqo_plans_stay_on_grid =
  QCheck.Test.make ~count:15 ~name:"joint brute-force plans stay on the condition grid"
    QCheck.(int_range 1 500)
    (fun seed ->
      let t = Oracle.instance seed in
      let rp =
        Raqo_resource.Resource_planner.create
          ~strategy:Raqo_resource.Resource_planner.Brute_force ~cache:true Oracle.conditions
      in
      let coster = Coster.raqo Oracle.model t.Oracle.schema rp in
      match Selinger.optimize coster t.Oracle.schema t.Oracle.relations with
      | None -> QCheck.Test.fail_report "no plan"
      | Some (tree, _) ->
          let diags =
            Invariant.check_resources ~grid:true ~conditions:Oracle.conditions tree
            @ Invariant.check_bhj_memory ~model:Oracle.model ~schema:t.Oracle.schema tree
          in
          diags = [] || QCheck.Test.fail_report (Diagnostic.render diags))

let prop_pareto_front_is_non_dominated =
  QCheck.Test.make ~count:100 ~name:"Objective.pareto_front output passes check_pareto"
    QCheck.(list_of_size Gen.(1 -- 12) (pair (float_range 0.1 100.0) (float_range 0.1 100.0)))
    (fun points ->
      let items = List.map (fun (time, money) -> Objective.make ~time ~money) points in
      let front = Objective.pareto_front items ~objective:(fun o -> o) in
      let describe o = Format.asprintf "%a" Objective.pp o in
      let diags = Invariant.check_pareto ~objective:(fun o -> o) ~describe front in
      diags = [] || QCheck.Test.fail_report (Diagnostic.render diags))

let prop_cache_lookups_pass_audit =
  QCheck.Test.make ~count:100 ~name:"every cache lookup policy passes check_cache_lookup"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 8)
           (triple (float_range 0.0 10.0) (int_range 1 8) (float_range 1.0 6.0)))
        (list_of_size Gen.(1 -- 6) (float_range 0.0 10.0)))
    (fun (entries, probes) ->
      let cache = Plan_cache.create () in
      List.iter
        (fun (data_gb, nc, gb) ->
          Plan_cache.insert cache ~key:"k" ~data_gb (res nc gb);
          (* Near-duplicate keys a few ulps apart are exactly the regime the
             weighted-average epsilon guard exists for. *)
          Plan_cache.insert cache ~key:"k" ~data_gb:(Float.succ data_gb) (res nc gb))
        entries;
      let probes = probes @ List.map (fun (d, _, _) -> d) entries in
      let diags =
        List.concat_map
          (fun data_gb ->
            List.concat_map
              (fun lookup -> Invariant.check_cache_lookup cache ~key:"k" ~data_gb lookup)
              [ Plan_cache.Exact; Plan_cache.Nearest_neighbor 0.5; Plan_cache.Weighted_average 0.5 ])
          probes
      in
      diags = [] || QCheck.Test.fail_report (Diagnostic.render diags))

(* -------------------------------------------------------------------- run *)

let () =
  Alcotest.run "raqo_verify"
    [
      ( "invariant",
        [
          Alcotest.test_case "accepts a real Selinger plan" `Quick test_checker_accepts_real_plan;
          Alcotest.test_case "rejects duplicated leaves" `Quick test_checker_rejects_duplicate_leaf;
          Alcotest.test_case "rejects wrong leaf sets" `Quick test_checker_rejects_wrong_leaf_set;
          Alcotest.test_case "rejects out-of-bounds resources" `Quick
            test_checker_rejects_out_of_bounds_resources;
          Alcotest.test_case "rejects BHJ over memory" `Quick test_checker_rejects_bhj_oom;
          Alcotest.test_case "rejects bad costs" `Quick test_checker_rejects_bad_costs;
          Alcotest.test_case "rejects dominated Pareto points" `Quick
            test_checker_rejects_dominated_pareto;
          Alcotest.test_case "accepts well-behaved cache lookups" `Quick
            test_cache_lookup_checker_passes_on_real_cache;
        ]
        @ qsuite
            [
              prop_selinger_plans_pass_checker;
              prop_raqo_plans_stay_on_grid;
              prop_pareto_front_is_non_dominated;
              prop_cache_lookups_pass_audit;
            ] );
      ( "oracle",
        [
          Alcotest.test_case "clean instance passes" `Quick test_oracle_clean_instance;
          Alcotest.test_case "clean instance passes with parallel arms" `Quick
            test_oracle_clean_parallel_arms;
          Alcotest.test_case "catches a sign-flipped coster" `Quick test_oracle_catches_sign_flip;
          Alcotest.test_case "catches memoized-coster drift" `Quick test_oracle_catches_memo_drift;
          Alcotest.test_case "catches a broken joint arm" `Quick
            test_oracle_catches_broken_joint_arm;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean seeds report nothing" `Quick test_fuzz_clean_seeds;
          Alcotest.test_case "shrinks a sign-flip failure to one join" `Quick
            test_fuzz_shrinks_sign_flip;
        ] );
      ( "production",
        [
          Alcotest.test_case "Cost_based.coster reproduces the reported cost" `Quick
            test_cost_based_coster_reproduces_cost;
          Alcotest.test_case "counting coster counts invocations" `Quick
            test_counting_coster_counts;
        ] );
    ]
